"""One parameter object for every selection entry point.

Historically each layer spelled "which selection do I want" differently:
``WorkloadLab.selection(algorithm, select_pfus)``, the engine's
:func:`~repro.engine.pipeline.make_spec` keyword soup, and the module
functions :func:`~repro.extinst.greedy.greedy_select` /
:func:`~repro.extinst.selective.selective_select` each with their own
tunable dataclass.  :class:`SelectionParams` is the single request shape
all of them now accept (legacy positional forms keep working for one
release); :func:`run_selection` is the algorithm-agnostic dispatcher.

Which algorithms exist — and which of these fields each one reads — is
the :mod:`repro.extinst.registry`'s business: validation, dispatch and
:meth:`SelectionParams.normalized` all consult it, so a registered
plugin participates in every entry point without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.extinst.extraction import ExtractionParams
from repro.extinst.registry import (
    DEFAULT_GAIN_THRESHOLD,
    DEFAULT_MAX_PASSES,
    DEFAULT_RECONFIG_LATENCY,
    DEFAULT_STALL_PASSES,
    get_selector,
    registered_algorithms,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.selection import Selection
    from repro.extinst.selective import SelectiveParams
    from repro.profiling.profiler import ProgramProfile

#: Snapshot of the built-in algorithm names (legacy import surface).
#: Prefer :func:`repro.extinst.registry.registered_algorithms`, which
#: also sees plugins registered after import.
ALGORITHMS = registered_algorithms()


@dataclass(frozen=True)
class SelectionParams:
    """A fully specified selection request.

    ``select_pfus`` is the PFU budget the *selection* plans for (distinct
    from the hardware PFU count a later timing run models); ``None``
    means unlimited.  Each algorithm declares the tunables it reads in
    its registry :class:`~repro.extinst.registry.SelectorSpec`; fields
    outside that set are ignored by the algorithm and collapsed by
    :meth:`normalized` (greedy ignores ``select_pfus`` and
    ``gain_threshold`` by design, §4; only isegen reads the KL knobs).
    """

    algorithm: str = "selective"
    select_pfus: int | None = None
    gain_threshold: float = DEFAULT_GAIN_THRESHOLD
    extraction: ExtractionParams = field(default_factory=ExtractionParams)
    #: isegen: latency charged per cold configuration load when scoring.
    reconfig_latency: int = DEFAULT_RECONFIG_LATENCY
    #: isegen: hard cap on KL improvement passes.
    max_passes: int = DEFAULT_MAX_PASSES
    #: isegen: stop after this many consecutive non-improving passes.
    stall_passes: int = DEFAULT_STALL_PASSES

    def __post_init__(self) -> None:
        get_selector(self.algorithm)   # raises naming valid choices

    def normalized(self) -> "SelectionParams":
        """Collapse fields the algorithm ignores (stable cache identity).

        Every field the algorithm's registry spec does not declare as a
        tunable is reset to its default, and ``select_pfus`` is dropped
        for budget-blind algorithms — so two requests differing only in
        ignored knobs share cache keys and scheduler jobs.
        """
        spec = get_selector(self.algorithm)
        collapsed = replace(
            SelectionParams(algorithm=self.algorithm),
            select_pfus=self.select_pfus if spec.uses_select_pfus else None,
            **{t.name: getattr(self, t.name) for t in spec.tunables},
        )
        return self if collapsed == self else collapsed

    def selective_params(self) -> "SelectiveParams":
        """The equivalent :class:`~repro.extinst.selective.SelectiveParams`."""
        from repro.extinst.selective import SelectiveParams

        return SelectiveParams(
            gain_threshold=self.gain_threshold, extraction=self.extraction
        )


def coerce_selection_params(
    algorithm: "str | SelectionParams",
    select_pfus: int | None = None,
) -> SelectionParams:
    """Normalise the legacy ``(algorithm, select_pfus)`` pair.

    Accepts either a ready :class:`SelectionParams` (``select_pfus`` must
    then be omitted) or the historical string form.
    """
    if isinstance(algorithm, SelectionParams):
        if select_pfus is not None:
            raise ConfigurationError(
                "pass select_pfus inside SelectionParams, not alongside it"
            )
        return algorithm.normalized()
    return SelectionParams(
        algorithm=algorithm, select_pfus=select_pfus
    ).normalized()


def run_selection(
    profile: "ProgramProfile", params: SelectionParams
) -> "Selection":
    """Dispatch ``params`` to its registered algorithm implementation."""
    params = params.normalized()
    return get_selector(params.algorithm).run(profile, params)


__all__ = [
    "ALGORITHMS",
    "DEFAULT_GAIN_THRESHOLD",
    "SelectionParams",
    "coerce_selection_params",
    "run_selection",
]
