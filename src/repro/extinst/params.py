"""One parameter object for every selection entry point.

Historically each layer spelled "which selection do I want" differently:
``WorkloadLab.selection(algorithm, select_pfus)``, the engine's
:func:`~repro.engine.pipeline.make_spec` keyword soup, and the module
functions :func:`~repro.extinst.greedy.greedy_select` /
:func:`~repro.extinst.selective.selective_select` each with their own
tunable dataclass.  :class:`SelectionParams` is the single request shape
all of them now accept (legacy positional forms keep working for one
release); :func:`run_selection` is the algorithm-agnostic dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.extinst.extraction import ExtractionParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.selection import Selection
    from repro.extinst.selective import SelectiveParams
    from repro.profiling.profiler import ProgramProfile

#: §5.1 default: keep sequences worth >= 0.5% of application time.
DEFAULT_GAIN_THRESHOLD = 0.005

ALGORITHMS = ("greedy", "selective")


@dataclass(frozen=True)
class SelectionParams:
    """A fully specified selection request.

    ``select_pfus`` is the PFU budget the *selection* plans for (distinct
    from the hardware PFU count a later timing run models); ``None``
    means unlimited.  Greedy ignores ``select_pfus`` and
    ``gain_threshold`` by design (§4).
    """

    algorithm: str = "selective"
    select_pfus: int | None = None
    gain_threshold: float = DEFAULT_GAIN_THRESHOLD
    extraction: ExtractionParams = field(default_factory=ExtractionParams)

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown selection algorithm {self.algorithm!r} "
                f"(expected one of {ALGORITHMS})"
            )

    def normalized(self) -> "SelectionParams":
        """Collapse fields the algorithm ignores (stable cache identity)."""
        if self.algorithm == "greedy" and self.select_pfus is not None:
            return SelectionParams(
                algorithm="greedy", select_pfus=None,
                gain_threshold=self.gain_threshold, extraction=self.extraction,
            )
        return self

    def selective_params(self) -> "SelectiveParams":
        """The equivalent :class:`~repro.extinst.selective.SelectiveParams`."""
        from repro.extinst.selective import SelectiveParams

        return SelectiveParams(
            gain_threshold=self.gain_threshold, extraction=self.extraction
        )


def coerce_selection_params(
    algorithm: "str | SelectionParams",
    select_pfus: int | None = None,
) -> SelectionParams:
    """Normalise the legacy ``(algorithm, select_pfus)`` pair.

    Accepts either a ready :class:`SelectionParams` (``select_pfus`` must
    then be omitted) or the historical string form.
    """
    if isinstance(algorithm, SelectionParams):
        if select_pfus is not None:
            raise ConfigurationError(
                "pass select_pfus inside SelectionParams, not alongside it"
            )
        return algorithm.normalized()
    return SelectionParams(
        algorithm=algorithm, select_pfus=select_pfus
    ).normalized()


def run_selection(
    profile: "ProgramProfile", params: SelectionParams
) -> "Selection":
    """Dispatch ``params`` to the right algorithm implementation."""
    from repro.extinst.greedy import greedy_select
    from repro.extinst.selective import selective_select

    params = params.normalized()
    if params.algorithm == "greedy":
        return greedy_select(profile, params.extraction)
    return selective_select(
        profile, params.select_pfus, params.selective_params()
    )


__all__ = [
    "ALGORITHMS",
    "DEFAULT_GAIN_THRESHOLD",
    "SelectionParams",
    "coerce_selection_params",
    "run_selection",
]
