"""Extended-instruction machinery — the paper's primary contribution.

Pipeline:

1. :mod:`repro.profiling` profiles the program (execution counts, operand
   bitwidths) — the paper's ``sim_profile``-based tool.
2. :mod:`repro.extinst.extraction` mines *maximal candidate sequences*
   from basic-block dataflow graphs under the §4 constraints: candidate
   (narrow ALU) operations only, at most two register inputs, one output,
   intermediate values dead outside the sequence.
3. Either :func:`repro.extinst.greedy.greedy_select` (§4: take everything)
   or :func:`repro.extinst.selective.selective_select` (§5: the gain
   threshold + per-loop subsequence-matrix algorithm) picks which
   sequences become PFU configurations.
4. :mod:`repro.extinst.rewriter` rewrites the program, replacing each
   chosen occurrence with a single ``ext`` instruction, and emits the
   ``conf -> ExtInstDef`` table both simulators consume.
5. :mod:`repro.extinst.validate` checks semantic equivalence of the
   rewritten program against the original.
"""

from repro.extinst.extdef import ExtInstDef, ExtOp, OperandRef
from repro.extinst.extraction import (
    CandidateSequence,
    ExtractionParams,
    extract_candidate_sequences,
)
from repro.extinst.greedy import greedy_select
from repro.extinst.params import (
    SelectionParams,
    coerce_selection_params,
    run_selection,
)
from repro.extinst.rewriter import apply_selection
from repro.extinst.selection import RewriteSite, Selection
from repro.extinst.selective import SelectiveParams, selective_select
from repro.extinst.validate import validate_equivalence

__all__ = [
    "ExtInstDef",
    "ExtOp",
    "OperandRef",
    "CandidateSequence",
    "ExtractionParams",
    "extract_candidate_sequences",
    "greedy_select",
    "selective_select",
    "run_selection",
    "coerce_selection_params",
    "SelectionParams",
    "SelectiveParams",
    "Selection",
    "RewriteSite",
    "apply_selection",
    "validate_equivalence",
]
