"""Extended-instruction machinery — the paper's primary contribution.

Pipeline:

1. :mod:`repro.profiling` profiles the program (execution counts, operand
   bitwidths) — the paper's ``sim_profile``-based tool.
2. :mod:`repro.extinst.extraction` mines *maximal candidate sequences*
   from basic-block dataflow graphs under the §4 constraints: candidate
   (narrow ALU) operations only, at most two register inputs, one output,
   intermediate values dead outside the sequence.
3. A selector registered in :mod:`repro.extinst.registry` picks which
   sequences become PFU configurations:
   :func:`repro.extinst.greedy.greedy_select` (§4: take everything),
   :func:`repro.extinst.selective.selective_select` (§5: the gain
   threshold + per-loop subsequence-matrix algorithm), or
   :func:`repro.extinst.isegen.isegen_select` (Kernighan-Lin iterative
   improvement over the selective seed).  Every entry point dispatches
   through the registry, so new selectors plug in without touching the
   callers.
4. :mod:`repro.extinst.rewriter` rewrites the program, replacing each
   chosen occurrence with a single ``ext`` instruction, and emits the
   ``conf -> ExtInstDef`` table both simulators consume.
5. :mod:`repro.extinst.validate` checks semantic equivalence of the
   rewritten program against the original.
"""

from repro.extinst.extdef import ExtInstDef, ExtOp, OperandRef
from repro.extinst.extraction import (
    CandidateSequence,
    ExtractionParams,
    extract_candidate_sequences,
)
from repro.extinst.estimate import CyclesSavedEstimate, estimate_cycles_saved
from repro.extinst.greedy import greedy_select
from repro.extinst.isegen import isegen_select
from repro.extinst.params import (
    SelectionParams,
    coerce_selection_params,
    run_selection,
)
from repro.extinst.registry import (
    BASELINE,
    GREEDY,
    ISEGEN,
    SELECTIVE,
    SelectorSpec,
    Tunable,
    get_selector,
    register_selector,
    registered_algorithms,
    selector_specs,
)
from repro.extinst.rewriter import apply_selection
from repro.extinst.selection import RewriteSite, Selection
from repro.extinst.selective import SelectiveParams, selective_select
from repro.extinst.validate import validate_equivalence

__all__ = [
    "BASELINE",
    "GREEDY",
    "ISEGEN",
    "SELECTIVE",
    "SelectorSpec",
    "Tunable",
    "CyclesSavedEstimate",
    "estimate_cycles_saved",
    "get_selector",
    "isegen_select",
    "register_selector",
    "registered_algorithms",
    "selector_specs",
    "ExtInstDef",
    "ExtOp",
    "OperandRef",
    "CandidateSequence",
    "ExtractionParams",
    "extract_candidate_sequences",
    "greedy_select",
    "selective_select",
    "run_selection",
    "coerce_selection_params",
    "SelectionParams",
    "SelectiveParams",
    "Selection",
    "RewriteSite",
    "apply_selection",
    "validate_equivalence",
]
