"""Subsequence enumeration and the §5.1 containment matrix.

For each maximal candidate sequence, every *valid* subsequence (a subset
of its nodes that is itself a legal extended instruction) is a potential
PFU configuration — "our approach begins by extracting all valid
subsequences and adding them to the candidate extended instruction list".

The candidate list is organised as a k x k matrix: entry ``[I, J]`` counts
appearances of pattern I within occurrences of maximal sequence J,
weighted by J's execution count (the paper's Figure 4 uses static counts
inside one loop; weighting by frequency generalises this across blocks
with different trip counts while reducing to the same ranking in the
paper's example). The diagonal counts maximal (stand-alone) appearances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.extinst.extdef import ExtInstDef
from repro.extinst.extraction import (
    CandidateSequence,
    ExtractionParams,
    SequenceBuild,
    build_sequence,
)
from repro.program.dfg import DataflowGraph
from repro.program.program import Program


@dataclass(frozen=True)
class SubOccurrence:
    """One embedding of a pattern inside a maximal sequence occurrence."""

    nodes: tuple[int, ...]
    build: SequenceBuild

    @property
    def key(self) -> tuple:
        return self.build.extdef.key


def enumerate_subsequences(
    program: Program,
    dfg: DataflowGraph,
    seq: CandidateSequence,
    params: ExtractionParams,
) -> dict[tuple, list[SubOccurrence]]:
    """All valid subsequences of ``seq``, grouped by canonical key.

    Includes the full sequence itself. Maximal sequences hold at most
    ``params.max_nodes`` (8) nodes, so exhaustive subset enumeration is
    at most 255 validations per sequence.
    """
    out: dict[tuple, list[SubOccurrence]] = {}
    node_list = list(seq.nodes)
    for size in range(params.min_nodes, len(node_list) + 1):
        for subset in combinations(node_list, size):
            build = build_sequence(program, dfg, set(subset), params.max_inputs)
            if build is None or build.extdef.depth > params.max_depth:
                continue
            occ = SubOccurrence(nodes=subset, build=build)
            out.setdefault(occ.key, []).append(occ)
    return out


def disjoint_count(occurrences: list[SubOccurrence]) -> int:
    """Maximum number of non-overlapping embeddings (greedy by position).

    Used so that a pattern appearing in two overlapping ways inside one
    maximal sequence is not double-counted in the gain estimate.
    """
    taken: set[int] = set()
    count = 0
    for occ in sorted(occurrences, key=lambda o: o.nodes):
        if taken.isdisjoint(occ.nodes):
            taken.update(occ.nodes)
            count += 1
    return count


@dataclass
class ContainmentMatrix:
    """The k x k candidate matrix for one loop (§5.1, Figure 4)."""

    keys: list[tuple]                         # row/column order
    counts: list[list[int]]                   # counts[i][j] = I within J
    gains: dict[tuple, int]                   # per-execution gain of pattern I
    defs: dict[tuple, ExtInstDef]             # representative ExtInstDef per key

    def score(self, key: tuple) -> int:
        """Total potential gain of selecting pattern ``key``: appearances
        across all maximal sequences times its per-execution saving."""
        i = self.keys.index(key)
        return sum(self.counts[i]) * self.gains[key]

    def ranked_keys(self) -> list[tuple]:
        """Pattern keys by descending total gain (ties: larger pattern first)."""
        return sorted(
            self.keys,
            key=lambda k: (-self.score(k), -len(self.defs[k].nodes)),
        )


def build_containment_matrix(
    program: Program,
    dfgs: dict[int, DataflowGraph],
    maximal_seqs: list[CandidateSequence],
    params: ExtractionParams,
) -> ContainmentMatrix:
    """Build the matrix over a group of maximal sequences (one loop).

    Column ``J`` corresponds to the J-th distinct *maximal* key; multiple
    occurrences of the same maximal pattern accumulate into one column
    (the paper's Figure 4: the two identical sequences share row/column J).
    """
    maximal_keys: list[tuple] = []
    col_of: dict[tuple, int] = {}
    for seq in maximal_seqs:
        if seq.key not in col_of:
            col_of[seq.key] = len(maximal_keys)
            maximal_keys.append(seq.key)

    # pattern key -> column -> weighted count
    cells: dict[tuple, dict[int, int]] = {}
    gains: dict[tuple, int] = {}
    defs: dict[tuple, ExtInstDef] = {}
    for seq in maximal_seqs:
        col = col_of[seq.key]
        subs = enumerate_subsequences(program, dfgs[seq.bid], seq, params)
        for key, occs in subs.items():
            n = disjoint_count(occs)
            if n == 0:
                continue
            cells.setdefault(key, {})
            cells[key][col] = cells[key].get(col, 0) + n * max(1, seq.exec_count)
            gains.setdefault(key, occs[0].build.extdef.gain_per_execution)
            defs.setdefault(key, occs[0].build.extdef)

    keys = list(cells)
    counts = [
        [cells[key].get(col, 0) for col in range(len(maximal_keys))] for key in keys
    ]
    return ContainmentMatrix(keys=keys, counts=counts, gains=gains, defs=defs)
