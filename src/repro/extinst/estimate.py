"""The shared estimated-cycles-saved model all selectors are judged by.

A selection's worth under a reconfigurable machine is not just the sum
of its sites' savings: every distinct configuration a top-level loop
uses must be loaded into a PFU, and a loop needing more configurations
than the machine has PFUs reconfigures *inside* its steady state (the
thrashing the paper's Figure 6 measures).  This module scores a
:class:`~repro.extinst.selection.Selection` under that model:

* fold gain — ``exec_count * (depth - 1)`` per site, the cycles the
  collapsed dependence chains no longer serialise;
* reconfiguration cost — within a top-level loop group that fits the
  PFU budget, one cold load per distinct configuration; for a group
  over budget, a pessimistic reload per extended-instruction execution
  (steady-state thrashing).

It is the objective isegen's Kernighan-Lin moves climb, the score the
figures harness compares the three selectors on, and the quantity the
fuzz differential checks never goes negative.  Keeping it in one place
means "isegen ties or beats selective" is measured by the same ruler
isegen optimised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.extinst.selection import Selection
from repro.profiling.profiler import ProgramProfile


@dataclass(frozen=True)
class CyclesSavedEstimate:
    """Breakdown of a selection's estimated payoff on one machine."""

    fold_gain: int
    reconfig_cost: int
    n_thrashing_groups: int

    @property
    def saved(self) -> int:
        """Net estimated cycles saved (may be negative when thrashing)."""
        return self.fold_gain - self.reconfig_cost


def estimate_cycles_saved(
    profile: ProgramProfile,
    selection: Selection,
    n_pfus: int | None,
    reconfig_latency: int,
) -> CyclesSavedEstimate:
    """Score ``selection`` on a machine with ``n_pfus`` PFUs and the
    given reconfiguration latency.

    Sites are grouped by the *top-level* loop containing them (the same
    grouping selective and isegen budget by): a nested loop's
    configurations are a subset of its enclosing top-level loop's, so
    the outermost group determines whether steady state reconfigures.
    ``n_pfus=None`` models an unbounded PFU array (cold loads only).
    """
    fold_gain = 0
    group_confs: dict[int | None, set[int]] = {}
    group_execs: dict[int | None, int] = {}
    for site in selection.sites:
        execs = max(1, profile.exec_counts[site.root])
        fold_gain += execs * selection.ext_defs[site.conf].gain_per_execution
        loop = profile.outermost_loop_of(site.root)
        header = loop.header if loop else None
        group_confs.setdefault(header, set()).add(site.conf)
        group_execs[header] = group_execs.get(header, 0) + execs

    reconfig_cost = 0
    thrashing = 0
    for header, confs in group_confs.items():
        if n_pfus is None or len(confs) <= n_pfus:
            reconfig_cost += reconfig_latency * len(confs)
        else:
            thrashing += 1
            reconfig_cost += reconfig_latency * group_execs[header]
    return CyclesSavedEstimate(
        fold_gain=fold_gain,
        reconfig_cost=reconfig_cost,
        n_thrashing_groups=thrashing,
    )


__all__ = ["CyclesSavedEstimate", "estimate_cycles_saved"]
