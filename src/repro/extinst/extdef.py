"""Extended-instruction definitions (PFU configurations).

An :class:`ExtInstDef` is the dataflow function a PFU gets configured to
compute: a small DAG of ALU operations over at most two register inputs
(the register-file port constraint of §2) producing one output. Immediate
values from the original code are baked into the configuration.

Two instruction sequences that perform the same operation "share an
identical PFU configuration" (§5.1, Figure 3) — identity is structural:
:attr:`ExtInstDef.key` canonicalises the DAG (opcodes, operand wiring,
immediates) independent of which architectural registers the original
code used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ExtInstError
from repro.isa.opcodes import Opcode
from repro.isa.semantics import alu_eval, has_alu_semantics

#: Operand reference inside an ExtInstDef:
#: ``("in", 0|1)`` — external input slot; ``("node", j)`` — output of node j;
#: ``("imm", v)`` — baked-in immediate; ``("zero",)`` — the constant 0.
OperandRef = Union[tuple[str, int], tuple[str]]


@dataclass(frozen=True)
class ExtOp:
    """One operation node. ``b`` is None for LUI (its immediate is in ``a``
    position semantics; see alu_eval) — in practice both operands are
    always present as refs."""

    op: Opcode
    a: OperandRef
    b: OperandRef

    def __post_init__(self) -> None:
        if not has_alu_semantics(self.op):
            raise ExtInstError(f"{self.op} cannot be part of an extended instruction")
        for ref in (self.a, self.b):
            if ref[0] not in ("in", "node", "imm", "zero"):
                raise ExtInstError(f"bad operand reference {ref!r}")


@dataclass(frozen=True)
class ExtInstDef:
    """A PFU configuration: a topologically ordered operation DAG.

    The value of the last node is the instruction's result. ``n_inputs``
    is the number of external register operands (1 or 2).
    """

    nodes: tuple[ExtOp, ...]
    n_inputs: int
    name: str = ""
    latency: int = 1

    #: The T1000 encoding provides two register read ports (§2); wider
    #: definitions (up to 4 inputs) exist only for design-space analysis
    #: (the register-port ablation) and cannot be rewritten into programs
    #: — the rewriter enforces the architectural limit.
    MAX_ANALYSIS_INPUTS = 4

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ExtInstError("extended instruction needs at least one node")
        if not 1 <= self.n_inputs <= self.MAX_ANALYSIS_INPUTS:
            raise ExtInstError(
                f"extended instructions take 1-{self.MAX_ANALYSIS_INPUTS} "
                f"inputs, got {self.n_inputs}"
            )
        for j, node in enumerate(self.nodes):
            for ref in (node.a, node.b):
                if ref[0] == "node" and not 0 <= ref[1] < j:
                    raise ExtInstError(
                        f"node {j} references node {ref[1]} out of topo order"
                    )
                if ref[0] == "in" and not 0 <= ref[1] < self.n_inputs:
                    raise ExtInstError(f"node {j} references input {ref[1]}")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def key(self) -> tuple:
        """Canonical structural identity (register-name independent)."""
        return tuple(
            (node.op.value, node.a, node.b) for node in self.nodes
        ) + (self.n_inputs,)

    def evaluate(self, a: int, b: int = 0, *rest: int) -> int:
        """Interpret the DAG on input values ``a`` (slot 0) and ``b`` (slot 1).

        Shares :func:`alu_eval` with the functional simulator, so a folded
        sequence computes exactly what the original instructions did.
        Extra slots (analysis-only wide definitions) follow positionally.
        """
        inputs = (a, b, *rest)
        values: list[int] = []
        for node in self.nodes:
            operands = []
            for ref in (node.a, node.b):
                kind = ref[0]
                if kind == "in":
                    operands.append(inputs[ref[1]])
                elif kind == "node":
                    operands.append(values[ref[1]])
                elif kind == "imm":
                    operands.append(ref[1] & 0xFFFF_FFFF)
                else:  # zero
                    operands.append(0)
            values.append(alu_eval(node.op, operands[0], operands[1]))
        return values[-1]

    @property
    def depth(self) -> int:
        """Critical-path length in operation nodes.

        The base out-of-order machine needs at least ``depth`` cycles to
        execute the sequence (each node is a 1-cycle ALU op); a PFU does it
        in one. The per-execution cycle gain is therefore ``depth - 1``
        (§2.1's example: 3 dependent ops, 3 cycles -> 1 cycle, saving 2).
        """
        depths = []
        for node in self.nodes:
            d = 1
            for ref in (node.a, node.b):
                if ref[0] == "node":
                    d = max(d, depths[ref[1]] + 1)
            depths.append(d)
        return max(depths)

    @property
    def gain_per_execution(self) -> int:
        """Cycles saved each time this instruction executes (vs base ALUs)."""
        return self.depth - 1

    def describe(self) -> str:
        """Human-readable listing of the configuration's dataflow."""
        def fmt(ref: OperandRef) -> str:
            kind = ref[0]
            if kind == "in":
                return f"in{ref[1]}"
            if kind == "node":
                return f"n{ref[1]}"
            if kind == "imm":
                return f"#{ref[1]}"
            return "0"

        lines = [
            f"n{j} = {node.op.value}({fmt(node.a)}, {fmt(node.b)})"
            for j, node in enumerate(self.nodes)
        ]
        header = self.name or "extinst"
        return (
            f"{header}: {self.n_inputs} input(s), {len(self.nodes)} ops, "
            f"depth {self.depth}\n  " + "\n  ".join(lines)
        )


def sequential_chain(ops: list[tuple[Opcode, OperandRef, OperandRef]]) -> ExtInstDef:
    """Test/demo helper: build an ExtInstDef from explicit node tuples."""
    nodes = tuple(ExtOp(op, a, b) for op, a, b in ops)
    n_inputs = 0
    for node in nodes:
        for ref in (node.a, node.b):
            if ref[0] == "in":
                n_inputs = max(n_inputs, ref[1] + 1)
    return ExtInstDef(nodes=nodes, n_inputs=max(1, n_inputs))
