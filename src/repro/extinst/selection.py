"""Selection results: which configurations exist and where they apply."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extinst.extdef import ExtInstDef


@dataclass(frozen=True)
class RewriteSite:
    """One program location to fold: ``nodes`` (ascending instruction
    indices inside block ``bid``) collapse into ``ext rd, rs, rt, conf``
    placed at the root (last node)."""

    bid: int
    nodes: tuple[int, ...]
    conf: int
    input_regs: tuple[int, ...]
    output_reg: int

    @property
    def root(self) -> int:
        return self.nodes[-1]


@dataclass
class Selection:
    """Output of a selection algorithm."""

    ext_defs: dict[int, ExtInstDef]    # conf id -> configuration
    sites: list[RewriteSite]
    algorithm: str
    meta: dict = field(default_factory=dict)

    @property
    def n_configs(self) -> int:
        return len(self.ext_defs)

    def configs_in_sites(self) -> set[int]:
        return {site.conf for site in self.sites}

    def describe(self) -> str:
        lines = [
            f"{self.algorithm} selection: {self.n_configs} configuration(s), "
            f"{len(self.sites)} rewrite site(s)"
        ]
        for conf, extdef in sorted(self.ext_defs.items()):
            uses = sum(1 for s in self.sites if s.conf == conf)
            lines.append(f"  conf {conf}: {len(extdef)} ops, {uses} site(s)")
        return "\n".join(lines)


class ConfAllocator:
    """Assigns stable conf ids to canonical configuration keys."""

    def __init__(self) -> None:
        self._by_key: dict[tuple, int] = {}
        self.defs: dict[int, ExtInstDef] = {}

    def conf_for(self, extdef: ExtInstDef) -> int:
        conf = self._by_key.get(extdef.key)
        if conf is None:
            conf = len(self._by_key)
            self._by_key[extdef.key] = conf
            self.defs[conf] = extdef
        return conf
