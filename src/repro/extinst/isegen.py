"""ISEGEN-style iterative improvement selection (third algorithm).

Greedy (§4) and selective (§5) are both single-pass: once a pattern is
chosen it is never reconsidered.  This module implements the
Kernighan-Lin-flavoured selector of "ISEGEN: Generation of High-Quality
Instruction Set Extensions by Iterative Improvement" (PAPERS.md),
adapted to the paper's configurable-PFU cost model:

1. **Seed** from the selective result — already per-loop budgeted, so
   every intermediate state respects the PFU constraint.
2. **Toggle moves**: add or drop one candidate pattern in one top-level
   loop group (a swap is a drop followed by an add later in the same
   pass).  Each move is scored by the change in *estimated cycles
   saved* under the configured reconfiguration latency — fold gain
   minus ``reconfig_latency`` per distinct configuration the group's
   rewritten code actually uses (the same ruler
   :func:`~repro.extinst.estimate.estimate_cycles_saved` applies to
   every selector).
3. **Kernighan-Lin pass structure**: within a pass, repeatedly apply
   the best-scoring unlocked move *even when its delta is negative*
   (uphill moves let the search escape the single-pass local optimum),
   lock the toggled pattern for the rest of the pass, then commit the
   best strictly-improving prefix of the move sequence — or revert the
   whole pass.  Terminate after ``stall_passes`` consecutive passes
   without improvement or ``max_passes`` total.

Every ordering in the search (group iteration, candidate ranking, move
tie-breaks) is total and derived from the extraction output, so results
are deterministic and safe to cache by
``(algorithm, select_pfus, tunables)`` alone.

Because commits are strictly improving, the final state never scores
below the seed *state*; the final selection is additionally compared
against the untouched selective seed selection under the shared
estimator and the better of the two is returned, so "isegen ties or
beats selective" holds by construction on every input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.extinst.estimate import estimate_cycles_saved
from repro.extinst.extraction import (
    CandidateSequence,
    extract_candidate_sequences,
)
from repro.extinst.matrix import SubOccurrence, enumerate_subsequences
from repro.extinst.registry import ISEGEN
from repro.extinst.selection import Selection
from repro.extinst.selective import fold_group_sites, selective_select
from repro.obs import get_recorder
from repro.profiling.profiler import ProgramProfile
from repro.program.dfg import build_all_dfgs
from repro.program.liveness import compute_liveness

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.params import SelectionParams

#: Candidate patterns considered per group, by potential-gain rank (seed
#: patterns always join regardless).  Bounds each pass at a few dozen
#: move evaluations per group.
MAX_POOL_KEYS = 24

#: A pass also ends after this many consecutive moves that fail to set a
#: new best prefix — bounded downhill exploration instead of walking
#: every locked candidate to the bottom.
MAX_DOWNHILL_MOVES = 8


def isegen_select(
    profile: ProgramProfile,
    n_pfus: int | None,
    params: "SelectionParams | None" = None,
) -> Selection:
    """Run ISEGEN iterative improvement for an ``n_pfus``-PFU machine.

    ``params`` carries the shared extraction/threshold tunables plus the
    isegen knobs (``reconfig_latency``, ``max_passes``,
    ``stall_passes``); defaults apply when omitted.
    """
    from repro.extinst.params import SelectionParams

    if params is None:
        params = SelectionParams(algorithm=ISEGEN, select_pfus=n_pfus)
    latency = max(0, params.reconfig_latency)

    # ------------------------------------------------------------------
    # candidate space: every maximal sequence (no gain threshold — the
    # search itself decides what pays), grouped by top-level loop, with
    # the full subsequence containment structure per sequence.
    sequences = extract_candidate_sequences(profile, params.extraction)
    groups: dict[int | None, list[CandidateSequence]] = {}
    for seq in sequences:
        groups.setdefault(seq.outer_loop_header, []).append(seq)
    headers = list(groups)

    program, cfg = profile.program, profile.cfg
    liveness = compute_liveness(cfg)
    dfgs = build_all_dfgs(cfg, liveness)
    subs_cache: dict[
        int | None, dict[int, dict[tuple, list[SubOccurrence]]]
    ] = {
        header: {
            i: enumerate_subsequences(
                program, dfgs[seq.bid], seq, params.extraction
            )
            for i, seq in enumerate(seqs_g)
        }
        for header, seqs_g in groups.items()
    }

    # ------------------------------------------------------------------
    # seed from selective (its per-group budgets make every seed group a
    # legal state); the seed keys are the configurations its sites use.
    seed_selection = selective_select(profile, n_pfus, params)
    state: dict[int | None, set[tuple]] = {header: set() for header in headers}
    for site in seed_selection.sites:
        loop = profile.outermost_loop_of(site.root)
        header = loop.header if loop else None
        if header in state:
            state[header].add(seed_selection.ext_defs[site.conf].key)

    pool = _candidate_pools(groups, subs_cache, state)

    # ------------------------------------------------------------------
    # group scoring: fold gain minus a cold reconfiguration per distinct
    # configuration the folds use, memoised by (group, chosen-set).
    eval_cache: dict[tuple, tuple[int, frozenset]] = {}

    def eval_group(
        header: int | None, chosen: frozenset
    ) -> tuple[int, frozenset]:
        """(fold gain, used keys) of folding ``header`` with ``chosen``."""
        cached = eval_cache.get((header, chosen))
        if cached is not None:
            return cached
        total = 0
        used: set[tuple] = set()
        for i, seq in enumerate(groups[header]):
            embeddings: list[SubOccurrence] = []
            for key, occs in subs_cache[header][i].items():
                if key in chosen:
                    embeddings.extend(occs)
            embeddings.sort(key=lambda o: (-len(o.nodes), o.nodes))
            taken: set[int] = set()
            execs = max(1, seq.exec_count)
            for occ in embeddings:
                if taken.isdisjoint(occ.nodes):
                    taken.update(occ.nodes)
                    total += execs * occ.build.extdef.gain_per_execution
                    used.add(occ.key)
        result = (total, frozenset(used))
        eval_cache[(header, chosen)] = result
        return result

    def group_score(header: int | None, chosen: frozenset) -> int:
        gain, used = eval_group(header, chosen)
        return gain - latency * len(used)

    def objective(current: dict[int | None, set[tuple]]) -> int:
        return sum(group_score(h, frozenset(current[h])) for h in headers)

    def prune(current: dict[int | None, set[tuple]]) -> None:
        """Drop chosen keys the folds never use (cost-free, frees budget)."""
        for h in headers:
            _, used = eval_group(h, frozenset(current[h]))
            current[h] = set(used)

    prune(state)
    seed_objective = objective(state)

    # ------------------------------------------------------------------
    # Kernighan-Lin passes
    passes = stalls = total_moves = 0
    while passes < params.max_passes and stalls < params.stall_passes:
        passes += 1
        gain, prefix = _run_pass(
            state, headers, pool, n_pfus, group_score
        )
        if gain > 0:
            for header, key, kind in prefix:
                if kind == "add":
                    state[header].add(key)
                else:
                    state[header].discard(key)
            total_moves += len(prefix)
            prune(state)
            stalls = 0
        else:
            stalls += 1

    final_objective = objective(state)

    # ------------------------------------------------------------------
    # materialise, then keep whichever of {improved, seed} the shared
    # estimator prefers (folding *all* sequences can differ from the
    # seed's thresholded folds, so the guarantee is enforced, not
    # assumed; ties go to the improved state).
    allocator, sites = fold_group_sites(groups, subs_cache, state)
    meta = {
        "n_maximal_sequences": len(sequences),
        "n_groups": len(headers),
        "n_pfus": n_pfus,
        "reconfig_latency": latency,
        "passes": passes,
        "moves_committed": total_moves,
        "seed_objective": seed_objective,
        "final_objective": final_objective,
    }
    selection = Selection(
        ext_defs=allocator.defs, sites=sites, algorithm=ISEGEN, meta=meta
    )
    improved = estimate_cycles_saved(profile, selection, n_pfus, latency)
    seed_est = estimate_cycles_saved(
        profile, seed_selection, n_pfus, latency
    )
    if seed_est.saved > improved.saved:
        meta["fell_back_to_seed"] = True
        meta["estimated_cycles_saved"] = seed_est.saved
        selection = Selection(
            ext_defs=seed_selection.ext_defs, sites=seed_selection.sites,
            algorithm=ISEGEN, meta=meta,
        )
    else:
        meta["estimated_cycles_saved"] = improved.saved

    rec = get_recorder()
    if rec.enabled:
        prog = profile.program.name
        rec.counter(
            "selection.candidates.considered",
            algorithm=ISEGEN, program=prog,
        ).inc(sum(len(pool[h]) for h in headers))
        rec.counter(
            "selection.candidates.accepted",
            algorithm=ISEGEN, program=prog,
        ).inc(len(selection.sites))
        rec.event(
            "selection.done", algorithm=ISEGEN, program=prog,
            configs=selection.n_configs, sites=len(selection.sites),
            passes=passes, moves=total_moves,
            objective=meta["estimated_cycles_saved"],
        )
    return selection


def _candidate_pools(
    groups: dict[int | None, list[CandidateSequence]],
    subs_cache: dict[int | None, dict[int, dict[tuple, list[SubOccurrence]]]],
    state: dict[int | None, set[tuple]],
) -> dict[int | None, list[tuple]]:
    """Ranked toggle candidates per group.

    Keys are ranked by an upper bound on their payoff (disjoint
    embeddings x execution count x per-execution gain), larger patterns
    first on ties, then a total ``repr`` order so the ranking — and with
    it every move tie-break — is deterministic.  The pool is capped at
    :data:`MAX_POOL_KEYS`; seed keys always join so every drop move
    stays available.
    """
    pools: dict[int | None, list[tuple]] = {}
    for header, seqs_g in groups.items():
        weight: dict[tuple, int] = {}
        size: dict[tuple, int] = {}
        for i, seq in enumerate(seqs_g):
            execs = max(1, seq.exec_count)
            for key, occs in subs_cache[header][i].items():
                count, taken = 0, set()
                for occ in sorted(occs, key=lambda o: o.nodes):
                    if taken.isdisjoint(occ.nodes):
                        taken.update(occ.nodes)
                        count += 1
                gain = occs[0].build.extdef.gain_per_execution
                weight[key] = weight.get(key, 0) + count * execs * gain
                size[key] = len(occs[0].build.extdef.nodes)
        ranked = sorted(
            weight, key=lambda k: (-weight[k], -size[k], repr(k))
        )
        pool = ranked[:MAX_POOL_KEYS]
        seen = set(pool)
        for key in sorted(state[header] - seen, key=repr):
            pool.append(key)
        pools[header] = pool
    return pools


def _run_pass(
    state: dict[int | None, set[tuple]],
    headers: list[int | None],
    pool: dict[int | None, list[tuple]],
    n_pfus: int | None,
    group_score,
) -> tuple[int, list[tuple]]:
    """One KL pass: chain best moves with locking, return the best
    strictly-improving prefix and its cumulative gain.

    Works on a scratch copy of ``state``; the caller commits the prefix.
    Move legality: a chosen key may be dropped, an unchosen key may be
    added while the group is under its PFU budget — so when a group is
    full, the only way in is a drop first (the KL swap).  Ties on delta
    resolve to the earliest move in the fixed (group, rank) iteration
    order.
    """
    work = {h: set(state[h]) for h in headers}
    locked: set[tuple] = set()
    trail: list[tuple] = []
    cum = best_cum = 0
    best_len = 0

    while True:
        best_delta = None
        best_move = None
        for header in headers:
            chosen = frozenset(work[header])
            score_now = group_score(header, chosen)
            under_budget = n_pfus is None or len(chosen) < n_pfus
            for key in pool[header]:
                if (header, key) in locked:
                    continue
                if key in chosen:
                    kind, changed = "drop", chosen - {key}
                elif under_budget:
                    kind, changed = "add", chosen | {key}
                else:
                    continue
                delta = group_score(header, changed) - score_now
                if best_delta is None or delta > best_delta:
                    best_delta, best_move = delta, (header, key, kind)
        if best_move is None:
            break
        header, key, kind = best_move
        if kind == "add":
            work[header].add(key)
        else:
            work[header].discard(key)
        locked.add((header, key))
        cum += best_delta
        trail.append(best_move)
        if cum > best_cum:
            best_cum, best_len = cum, len(trail)
        elif len(trail) - best_len >= MAX_DOWNHILL_MOVES:
            break
    return best_cum, trail[:best_len]


__all__ = ["isegen_select", "MAX_POOL_KEYS"]
