"""Selection serialisation — the paper's "second input file".

§3.1: "The simulator takes as input SimpleScalar PISA object code files.
A second input file specifies the instruction sequences that have been
selected as extended instructions." This module provides that file
format: a JSON document carrying the configuration table and rewrite
sites, so selection (a compile-time analysis) and simulation can run as
separate processes — ``t1000 select`` writes one, ``t1000 run
--selection`` consumes it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ExtInstError
from repro.extinst.extdef import ExtInstDef, ExtOp, OperandRef
from repro.extinst.selection import RewriteSite, Selection
from repro.isa.opcodes import opcode_by_name

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# ExtInstDef


def _ref_to_json(ref: OperandRef) -> list:
    return list(ref)


def _ref_from_json(data: Any) -> OperandRef:
    if (
        not isinstance(data, list)
        or not data
        or data[0] not in ("in", "node", "imm", "zero")
    ):
        raise ExtInstError(f"bad operand reference in selection file: {data!r}")
    if data[0] == "zero":
        return ("zero",)
    if len(data) != 2 or not isinstance(data[1], int):
        raise ExtInstError(f"bad operand reference in selection file: {data!r}")
    return (data[0], data[1])


def extdef_to_json(extdef: ExtInstDef) -> dict:
    return {
        "n_inputs": extdef.n_inputs,
        "name": extdef.name,
        "latency": extdef.latency,
        "nodes": [
            [node.op.value, _ref_to_json(node.a), _ref_to_json(node.b)]
            for node in extdef.nodes
        ],
    }


def extdef_from_json(data: dict) -> ExtInstDef:
    nodes = []
    for entry in data["nodes"]:
        op = opcode_by_name(entry[0])
        if op is None:
            raise ExtInstError(f"unknown opcode in selection file: {entry[0]!r}")
        nodes.append(ExtOp(op, _ref_from_json(entry[1]), _ref_from_json(entry[2])))
    return ExtInstDef(
        nodes=tuple(nodes),
        n_inputs=int(data["n_inputs"]),
        name=str(data.get("name", "")),
        latency=int(data.get("latency", 1)),
    )


# ----------------------------------------------------------------------
# Selection


def selection_to_json(selection: Selection) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "algorithm": selection.algorithm,
        "meta": selection.meta,
        "ext_defs": {
            str(conf): extdef_to_json(extdef)
            for conf, extdef in selection.ext_defs.items()
        },
        "sites": [
            {
                "bid": site.bid,
                "nodes": list(site.nodes),
                "conf": site.conf,
                "input_regs": list(site.input_regs),
                "output_reg": site.output_reg,
            }
            for site in selection.sites
        ],
    }


def selection_from_json(data: dict) -> Selection:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ExtInstError(f"unsupported selection file version {version!r}")
    ext_defs = {
        int(conf): extdef_from_json(entry)
        for conf, entry in data["ext_defs"].items()
    }
    sites = [
        RewriteSite(
            bid=int(s["bid"]),
            nodes=tuple(int(n) for n in s["nodes"]),
            conf=int(s["conf"]),
            input_regs=tuple(int(r) for r in s["input_regs"]),
            output_reg=int(s["output_reg"]),
        )
        for s in data["sites"]
    ]
    for site in sites:
        if site.conf not in ext_defs:
            raise ExtInstError(
                f"selection file site at block {site.bid} references "
                f"undefined configuration {site.conf}"
            )
    return Selection(
        ext_defs=ext_defs,
        sites=sites,
        algorithm=str(data.get("algorithm", "loaded")),
        meta=dict(data.get("meta", {})),
    )


def selection_dumps(selection: Selection) -> str:
    """The selection file contents as a string (canonical formatting)."""
    return json.dumps(selection_to_json(selection), indent=2, sort_keys=True) + "\n"


def selection_loads(text: str) -> Selection:
    """Parse a selection file from a string.

    Raises :class:`~repro.errors.ExtInstError` for malformed documents —
    including syntactically valid JSON that is not a selection object.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExtInstError(f"selection file is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ExtInstError(
            f"selection file must be a JSON object, got {type(data).__name__}"
        )
    return selection_from_json(data)


def save_selection(selection: Selection, path: str) -> None:
    """Write a selection file (the §3.1 "second input file")."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(selection_dumps(selection))


def load_selection(path: str) -> Selection:
    """Read a selection file written by :func:`save_selection`."""
    with open(path, encoding="utf-8") as fh:
        return selection_loads(fh.read())
