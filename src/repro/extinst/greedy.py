"""The greedy selection algorithm (§4).

"Our greedy selection algorithm chooses all extended instructions that
satisfy the following three criteria" — candidate (narrow ALU) ops, at
most two inputs / one output, maximal sequences. It pays no attention to
the number of PFUs or reconfiguration time; with limited PFUs it thrashes
(Figure 2, third bar), which is exactly what the selective algorithm of
§5 fixes.
"""

from __future__ import annotations

from repro.extinst.extraction import (
    ExtractionParams,
    extract_candidate_sequences,
)
from repro.extinst.selection import ConfAllocator, RewriteSite, Selection
from repro.obs import get_recorder
from repro.profiling.profiler import ProgramProfile


def greedy_select(
    profile: ProgramProfile,
    params: "ExtractionParams | SelectionParams | None" = None,
) -> Selection:
    """Fold every maximal candidate sequence in the program.

    ``params`` may be the historical :class:`ExtractionParams` or a full
    :class:`~repro.extinst.params.SelectionParams` (its ``extraction``
    field is used; greedy ignores the rest by design).
    """
    from repro.extinst.params import SelectionParams

    if isinstance(params, SelectionParams):
        params = params.extraction
    sequences = extract_candidate_sequences(profile, params)
    allocator = ConfAllocator()
    sites: list[RewriteSite] = []
    for seq in sequences:
        conf = allocator.conf_for(seq.extdef)
        sites.append(
            RewriteSite(
                bid=seq.bid,
                nodes=seq.nodes,
                conf=conf,
                input_regs=seq.input_regs,
                output_reg=seq.output_reg,
            )
        )
    selection = Selection(
        ext_defs=allocator.defs,
        sites=sites,
        algorithm="greedy",
        meta={
            "n_maximal_sequences": len(sequences),
            "sequence_lengths": sorted(len(s.nodes) for s in sequences),
        },
    )
    rec = get_recorder()
    if rec.enabled:
        prog = profile.program.name
        # greedy accepts every maximal candidate sequence (§4)
        rec.counter(
            "selection.candidates.considered",
            algorithm="greedy", program=prog,
        ).inc(len(sequences))
        rec.counter(
            "selection.candidates.accepted",
            algorithm="greedy", program=prog,
        ).inc(len(sites))
        rec.event(
            "selection.done", algorithm="greedy", program=prog,
            configs=selection.n_configs, sites=len(sites),
        )
    return selection


def greedy_statistics(profile: ProgramProfile, params=None) -> dict:
    """§4.1 reporting helper: distinct extended instructions and lengths."""
    selection = greedy_select(profile, params)
    lengths = [len(site.nodes) for site in selection.sites]
    return {
        "distinct_configs": selection.n_configs,
        "sites": len(selection.sites),
        "min_length": min(lengths) if lengths else 0,
        "max_length": max(lengths) if lengths else 0,
    }
