"""The selective algorithm (§5) — the paper's main contribution.

Steps (Figure 5):

1. Profile the program; extract maximal candidate sequences.
2. Compute potential gains. Keep only sequences responsible for at least
   a ``gain_threshold`` fraction (0.5%) of total application time — this
   focuses on high-payoff sequences and bounds the number of distinct
   configurations.
3. If the number of distinct configurations fits the PFU count, select
   them all and exit.
4. Otherwise consider loop bodies one at a time (innermost first). For a
   loop with more distinct sequences than PFUs, build the subsequence
   containment matrix and select the ``#PFU`` patterns with the highest
   total gain — possibly a short common subsequence shared by several
   maximal sequences instead of each maximal sequence separately
   (Figure 3/4's example).

The per-loop cap is what prevents PFU thrashing: within any one loop the
rewritten code uses at most ``n_pfus`` distinct configurations, so steady
state pays no reconfigurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extinst.extraction import (
    CandidateSequence,
    ExtractionParams,
    extract_candidate_sequences,
)
from repro.extinst.matrix import (
    SubOccurrence,
    build_containment_matrix,
    enumerate_subsequences,
)
from repro.extinst.selection import ConfAllocator, RewriteSite, Selection
from repro.obs import get_recorder
from repro.profiling.profiler import ProgramProfile
from repro.program.dfg import build_all_dfgs
from repro.program.liveness import compute_liveness


@dataclass(frozen=True)
class SelectiveParams:
    """Tunables of the selective algorithm (paper defaults)."""

    gain_threshold: float = 0.005   # §5.1: 0.5% of total application time
    extraction: ExtractionParams = field(default_factory=ExtractionParams)


def selective_select(
    profile: ProgramProfile,
    n_pfus: int | None,
    params: "SelectiveParams | SelectionParams | None" = None,
) -> Selection:
    """Run the selective algorithm for a machine with ``n_pfus`` PFUs.

    ``n_pfus=None`` (unlimited) degenerates to "select everything that
    passes the gain threshold" — the Figure 6 fourth bar.

    ``params`` may be the historical :class:`SelectiveParams` or a full
    :class:`~repro.extinst.params.SelectionParams` (its threshold and
    extraction tunables are used; ``n_pfus`` here stays authoritative).
    """
    from repro.extinst.params import SelectionParams

    if isinstance(params, SelectionParams):
        params = params.selective_params()
    params = params or SelectiveParams()
    sequences = extract_candidate_sequences(profile, params.extraction)
    total_time = max(1, profile.base_cycles_estimate)

    kept = [
        seq
        for seq in sequences
        if seq.exec_count * len(seq.nodes) / total_time >= params.gain_threshold
    ]
    distinct_keys = {seq.key for seq in kept}

    rec = get_recorder()
    if rec.enabled:
        prog = profile.program.name
        rec.counter(
            "selection.candidates.considered",
            algorithm="selective", program=prog,
        ).inc(len(sequences))
        below = len(sequences) - len(kept)
        if below:
            rec.counter(
                "selection.candidates.rejected",
                algorithm="selective", program=prog, reason="gain_threshold",
            ).inc(below)
    meta = {
        "n_maximal_sequences": len(sequences),
        "n_after_threshold": len(kept),
        "n_distinct_after_threshold": len(distinct_keys),
        "gain_threshold": params.gain_threshold,
        "n_pfus": n_pfus,
    }

    if n_pfus is None or len(distinct_keys) <= n_pfus:
        meta["per_loop_phase"] = False
        selection = _select_whole_sequences(kept, meta)
    else:
        meta["per_loop_phase"] = True
        selection = _select_per_loop(profile, kept, n_pfus, params, meta)

    if rec.enabled:
        rec.counter(
            "selection.candidates.accepted",
            algorithm="selective", program=prog,
        ).inc(len(selection.sites))
        budget_rejected = meta.get("n_budget_rejected", 0)
        if budget_rejected:
            rec.counter(
                "selection.candidates.rejected",
                algorithm="selective", program=prog, reason="pfu_budget",
            ).inc(budget_rejected)
        rec.event(
            "selection.done", algorithm="selective", program=prog,
            configs=selection.n_configs, sites=len(selection.sites),
            per_loop=meta["per_loop_phase"],
        )
    return selection


def _select_whole_sequences(
    kept: list[CandidateSequence], meta: dict
) -> Selection:
    allocator = ConfAllocator()
    sites = [
        RewriteSite(
            bid=seq.bid,
            nodes=seq.nodes,
            conf=allocator.conf_for(seq.extdef),
            input_regs=seq.input_regs,
            output_reg=seq.output_reg,
        )
        for seq in kept
    ]
    return Selection(
        ext_defs=allocator.defs, sites=sites, algorithm="selective", meta=meta
    )


def _marginal_gain(
    key: tuple,
    seqs_g: list[CandidateSequence],
    subs_by_seq: dict[int, dict[tuple, list[SubOccurrence]]],
    taken_by_seq: dict[int, set[int]],
    gain_per_exec: int,
) -> int:
    """Gain pattern ``key`` would add, given nodes already claimed by
    previously chosen patterns. Prevents spending a PFU on a pattern whose
    embeddings are fully covered (e.g. a subchain of an already-chosen
    maximal chain)."""
    total = 0
    for i, seq in enumerate(seqs_g):
        occs = subs_by_seq[i].get(key)
        if not occs:
            continue
        taken = taken_by_seq[i]
        count = 0
        local_taken = set(taken)
        for occ in sorted(occs, key=lambda o: o.nodes):
            if local_taken.isdisjoint(occ.nodes):
                local_taken.update(occ.nodes)
                count += 1
        total += count * max(1, seq.exec_count) * gain_per_exec
    return total


def _claim_nodes(
    key: tuple,
    seqs_g: list[CandidateSequence],
    subs_by_seq: dict[int, dict[tuple, list[SubOccurrence]]],
    taken_by_seq: dict[int, set[int]],
) -> None:
    """Mark the nodes pattern ``key``'s (greedy, disjoint) embeddings cover."""
    for i, _seq in enumerate(seqs_g):
        for occ in sorted(subs_by_seq[i].get(key, ()), key=lambda o: o.nodes):
            if taken_by_seq[i].isdisjoint(occ.nodes):
                taken_by_seq[i].update(occ.nodes)


def _select_per_loop(
    profile: ProgramProfile,
    kept: list[CandidateSequence],
    n_pfus: int,
    params: SelectiveParams,
    meta: dict,
) -> Selection:
    program = profile.program
    cfg = profile.cfg
    liveness = compute_liveness(cfg)
    dfgs = build_all_dfgs(cfg, liveness)

    # Group kept sequences by their *top-level* containing loop. Budgeting
    # the outermost loop automatically satisfies the per-loop cap for every
    # nested loop (their configurations are a subset of the <= n_pfus
    # chosen for the nest), which is what keeps steady-state execution
    # reconfiguration-free — the property behind the paper's "speedups
    # retained with 500-cycle reconfiguration" claim (§5.2). Sequences
    # outside any loop form their own group, also subject to the budget.
    groups: dict[int | None, list[CandidateSequence]] = {}
    for seq in kept:
        groups.setdefault(seq.outer_loop_header, []).append(seq)

    # Hotter groups first: they get first pick of globally shared configs.
    def group_weight(header: int | None) -> int:
        return sum(s.total_gain for s in groups[header])

    ordered_groups = sorted(groups, key=group_weight, reverse=True)

    chosen_defs: dict[tuple, object] = {}        # key -> ExtInstDef
    chosen_for_group: dict[int | None, set[tuple]] = {}
    subs_cache: dict[int | None, dict[int, dict[tuple, list[SubOccurrence]]]] = {}
    budget_rejected = 0

    for header in ordered_groups:
        seqs_g = groups[header]
        matrix = build_containment_matrix(program, dfgs, seqs_g, params.extraction)
        subs_by_seq = {
            i: enumerate_subsequences(program, dfgs[seq.bid], seq, params.extraction)
            for i, seq in enumerate(seqs_g)
        }
        subs_cache[header] = subs_by_seq
        taken_by_seq: dict[int, set[int]] = {i: set() for i in range(len(seqs_g))}

        # Configurations already chosen for other loops apply here for free
        # (same PFU contents); they claim their embeddings first.
        present_chosen = {k for k in matrix.keys if k in chosen_defs}
        for key in present_chosen:
            _claim_nodes(key, seqs_g, subs_by_seq, taken_by_seq)

        # Fill the remaining PFU budget by marginal gain: each round picks
        # the pattern adding the most cycles *not already covered*, so two
        # fully-overlapping patterns never both consume a PFU.
        budget = max(0, n_pfus - len(present_chosen))
        new_keys: list[tuple] = []
        for _ in range(budget):
            best_key, best_gain = None, 0
            for key in matrix.keys:
                if key in chosen_defs or key in new_keys:
                    continue
                gain = _marginal_gain(
                    key, seqs_g, subs_by_seq, taken_by_seq, matrix.gains[key]
                )
                if gain > best_gain or (
                    gain == best_gain
                    and best_key is not None
                    and gain > 0
                    and len(matrix.defs[key].nodes)
                    > len(matrix.defs[best_key].nodes)
                ):
                    best_key, best_gain = key, gain
            if best_key is None or best_gain == 0:
                break
            new_keys.append(best_key)
            _claim_nodes(best_key, seqs_g, subs_by_seq, taken_by_seq)
        for key in new_keys:
            chosen_defs[key] = matrix.defs[key]
        chosen_for_group[header] = present_chosen | set(new_keys)
        budget_rejected += len(matrix.keys) - len(chosen_for_group[header])

    meta["n_chosen_configs"] = len(chosen_defs)
    meta["n_budget_rejected"] = budget_rejected
    meta["groups"] = {
        str(header): sorted(len(chosen_defs[k].nodes) for k in keys)
        for header, keys in chosen_for_group.items()
    }

    # Rewrite phase: inside each group, fold non-overlapping embeddings of
    # that group's chosen patterns, largest saving first.
    allocator, sites = fold_group_sites(groups, subs_cache, chosen_for_group)
    return Selection(
        ext_defs=allocator.defs, sites=sites, algorithm="selective", meta=meta
    )


def fold_group_sites(
    groups: dict[int | None, list[CandidateSequence]],
    subs_cache: dict[int | None, dict[int, dict[tuple, list[SubOccurrence]]]],
    chosen_for_group: dict[int | None, set[tuple]],
) -> tuple[ConfAllocator, list[RewriteSite]]:
    """The rewrite fold selective and isegen share: inside each group,
    fold non-overlapping embeddings of that group's chosen patterns,
    largest saving first.  Deterministic given deterministic inputs —
    groups iterate in insertion order, embeddings sort on a total key."""
    allocator = ConfAllocator()
    sites: list[RewriteSite] = []
    for header, seqs_g in groups.items():
        allowed = chosen_for_group.get(header)
        if not allowed:
            continue
        for i, seq in enumerate(seqs_g):
            subs = subs_cache[header][i]
            embeddings: list[SubOccurrence] = []
            for key, occs in subs.items():
                if key in allowed:
                    embeddings.extend(occs)
            embeddings.sort(key=lambda o: (-len(o.nodes), o.nodes))
            taken: set[int] = set()
            for occ in embeddings:
                if not taken.isdisjoint(occ.nodes):
                    continue
                taken.update(occ.nodes)
                sites.append(
                    RewriteSite(
                        bid=seq.bid,
                        nodes=occ.nodes,
                        conf=allocator.conf_for(occ.build.extdef),
                        input_regs=occ.build.input_regs,
                        output_reg=occ.build.output_reg,
                    )
                )
    return allocator, sites
