"""Candidate-sequence extraction (§4's three criteria).

A *candidate sequence* is a set of instructions inside one basic block
that can be collapsed into a single PFU operation:

1. every instruction is a profiled candidate — an arithmetic/logic
   operation whose observed operand bitwidths stay at or below the
   threshold (18 bits by default);
2. the set reads at most two external registers and produces exactly one
   result (the root's destination) — the register-file port constraint;
3. every interior value is consumed *only* inside the set and is dead
   outside it, so deleting the interior instructions is safe;
4. replacing the set with one ``ext`` at the root position preserves
   semantics: every external input register must carry, at the root, the
   same value the folded instructions originally read (checked against
   intervening non-sequence definitions).

The *greedy/maximal* extractor grows each sequence backward from a root,
absorbing producers while the constraints hold — "maximal instruction
sequences that take as long as possible to execute on the base machine".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.extinst.extdef import ExtInstDef, ExtOp, OperandRef
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, opcode_info
from repro.program.dfg import DataflowGraph, build_all_dfgs
from repro.program.liveness import compute_liveness
from repro.program.program import Program
from repro.profiling.profiler import ProgramProfile


@dataclass(frozen=True)
class ExtractionParams:
    """Tunables of the extraction pass (paper defaults)."""

    width_threshold: int = 18   # §4: operand bitwidths of 18 bits or less
    max_inputs: int = 2         # register read-port constraint
    max_nodes: int = 8          # §4.1: observed sequence lengths 2..8
    min_nodes: int = 2
    max_depth: int = 8          # single-cycle PFU validity proxy (§3.1)
    require_executed: bool = True


@dataclass
class CandidateSequence:
    """One foldable occurrence: a node set within a basic block."""

    bid: int
    nodes: tuple[int, ...]           # ascending absolute instruction indices
    extdef: ExtInstDef
    input_regs: tuple[int, ...]      # registers feeding input slots 0..n-1
    output_reg: int
    exec_count: int
    loop_header: int | None          # innermost containing loop, if any
    outer_loop_header: int | None = None  # top-level containing loop

    @property
    def root(self) -> int:
        return self.nodes[-1]

    @property
    def key(self) -> tuple:
        """Configuration identity (delegates to the ExtInstDef)."""
        return self.extdef.key

    @property
    def gain_per_execution(self) -> int:
        return self.extdef.gain_per_execution

    @property
    def total_gain(self) -> int:
        """Estimated total cycles saved across the run (§5.1 potential gain)."""
        return self.exec_count * self.gain_per_execution


# ----------------------------------------------------------------------
# building an ExtInstDef from a node set


@dataclass
class SequenceBuild:
    """Result of validating/building one node set."""

    extdef: ExtInstDef
    input_regs: tuple[int, ...]
    output_reg: int


def build_sequence(
    program: Program,
    dfg: DataflowGraph,
    nodes: set[int],
    max_inputs: int = 2,
) -> SequenceBuild | None:
    """Validate ``nodes`` as a foldable sequence and build its ExtInstDef.

    Returns ``None`` if any constraint fails. ``nodes`` must all lie in
    ``dfg``'s block and have ALU semantics (callers pre-filter candidates).
    """
    if not nodes:
        return None
    ordered = sorted(nodes)
    root = ordered[-1]
    node_pos = {idx: j for j, idx in enumerate(ordered)}

    # interior values must stay inside; every non-root node must feed the set
    for idx in ordered[:-1]:
        if dfg.value_used_outside(idx, nodes):
            return None
        if not any(c in nodes for c in dfg.consumers.get(idx, ())):
            return None

    # wire up operands, assigning input slots in first-use order
    slot_of: dict[int, int] = {}
    ext_nodes: list[ExtOp] = []
    reads_by_reg: dict[int, list[int]] = {}
    for idx in ordered:
        instr = dfg.instrs[idx]
        refs = _operand_refs(
            instr, dfg.producers[idx], nodes, node_pos, slot_of, reads_by_reg, idx
        )
        if refs is None:
            return None
        ext_nodes.append(ExtOp(instr.op, refs[0], refs[1]))

    input_regs = tuple(sorted(slot_of, key=slot_of.__getitem__))
    if len(input_regs) > max_inputs:
        return None
    if not _inputs_consistent(program, dfg, nodes, root, reads_by_reg):
        return None

    defs = program.text[root].defs()
    if not defs or defs[0] == 0:
        return None
    extdef = ExtInstDef(nodes=tuple(ext_nodes), n_inputs=max(1, len(input_regs)))
    return SequenceBuild(
        extdef=extdef, input_regs=input_regs, output_reg=defs[0]
    )


def _operand_refs(
    instr: Instruction,
    producers: tuple[int | None, ...],
    nodes: set[int],
    node_pos: dict[int, int],
    slot_of: dict[int, int],
    reads_by_reg: dict[int, list[int]],
    idx: int,
) -> tuple[OperandRef, OperandRef] | None:
    """Operand references (a, b) for one instruction inside the set."""
    fmt = instr.info.fmt
    regs = instr.uses()

    def reg_ref(pos: int, reg: int) -> OperandRef:
        producer = producers[pos]
        if producer is not None and producer in nodes:
            return ("node", node_pos[producer])
        if reg == 0:
            return ("zero",)
        if reg not in slot_of:
            slot_of[reg] = len(slot_of)
        reads_by_reg.setdefault(reg, []).append(idx)
        return ("in", slot_of[reg])

    if fmt is Fmt.R3:
        return reg_ref(0, regs[0]), reg_ref(1, regs[1])
    if fmt in (Fmt.R2_IMM, Fmt.SHIFT_IMM):
        return reg_ref(0, regs[0]), ("imm", instr.imm or 0)
    return None  # LUI and anything else is not foldable


def _inputs_consistent(
    program: Program,
    dfg: DataflowGraph,
    nodes: set[int],
    root: int,
    reads_by_reg: dict[int, list[int]],
) -> bool:
    """Criterion 4: at the root, each external input register must hold the
    value the sequence's reads originally observed.

    Sequence-interior definitions are irrelevant (those instructions get
    deleted); what matters is that no *surviving* instruction between a
    read and the root redefines the register.
    """
    block_start = dfg.block.start
    text = program.text
    for reg, read_sites in reads_by_reg.items():
        first_read = min(read_sites)
        for i in range(first_read, root):
            if i in nodes:
                continue
            if reg in text[i].defs():
                return False
    return True


# ----------------------------------------------------------------------
# maximal-sequence extraction


def extract_candidate_sequences(
    profile: ProgramProfile, params: ExtractionParams | None = None
) -> list[CandidateSequence]:
    """Mine maximal candidate sequences from every basic block."""
    params = params or ExtractionParams()
    program = profile.program
    cfg = profile.cfg
    liveness = compute_liveness(cfg)
    dfgs = build_all_dfgs(cfg, liveness)

    candidate_nodes = _candidate_node_set(profile, params)
    sequences: list[CandidateSequence] = []

    for blk in cfg.blocks:
        dfg = dfgs[blk.bid]
        assigned: set[int] = set()
        for idx in reversed(range(blk.start, blk.end)):
            if idx not in candidate_nodes or idx in assigned:
                continue
            nodes = _grow(program, dfg, idx, candidate_nodes, assigned, params)
            if len(nodes) < params.min_nodes:
                continue
            build = build_sequence(program, dfg, nodes, params.max_inputs)
            if build is None or build.extdef.depth > params.max_depth:
                continue
            assigned |= nodes
            loop = profile.innermost_loop_of(idx)
            outer = profile.outermost_loop_of(idx)
            sequences.append(
                CandidateSequence(
                    bid=blk.bid,
                    nodes=tuple(sorted(nodes)),
                    extdef=build.extdef,
                    input_regs=build.input_regs,
                    output_reg=build.output_reg,
                    exec_count=profile.exec_counts[idx],
                    loop_header=loop.header if loop else None,
                    outer_loop_header=outer.header if outer else None,
                )
            )
    sequences.sort(key=lambda s: s.nodes[0])
    return sequences


def _candidate_node_set(
    profile: ProgramProfile, params: ExtractionParams
) -> set[int]:
    """Instructions eligible to appear inside an extended instruction."""
    out: set[int] = set()
    for i, instr in enumerate(profile.program.text):
        if not opcode_info(instr.op).candidate:
            continue
        if params.require_executed and profile.exec_counts[i] == 0:
            continue
        if profile.exec_counts[i] > 0 and (
            profile.max_operand_width[i] > params.width_threshold
        ):
            continue
        out.add(i)
    return out


def _grow(
    program: Program,
    dfg: DataflowGraph,
    root: int,
    candidates: set[int],
    assigned: set[int],
    params: ExtractionParams,
) -> set[int]:
    """Grow a maximal sequence backward from ``root``.

    Producers are absorbed nearest-first; each tentative addition is
    re-validated in full (inputs, liveness, consistency), so the result is
    always a valid sequence (or just ``{root}``).
    """
    nodes = {root}
    changed = True
    while changed and len(nodes) < params.max_nodes:
        changed = False
        frontier: list[int] = []
        for idx in nodes:
            for producer in dfg.producers[idx]:
                if (
                    producer is not None
                    and producer not in nodes
                    and producer in candidates
                    and producer not in assigned
                ):
                    frontier.append(producer)
        for producer in sorted(set(frontier), reverse=True):
            if dfg.value_used_outside(producer, nodes | {producer}):
                continue
            trial = nodes | {producer}
            build = build_sequence(program, dfg, trial, params.max_inputs)
            if build is None or build.extdef.depth > params.max_depth:
                continue
            nodes = trial
            changed = True
            if len(nodes) >= params.max_nodes:
                break
    return nodes
