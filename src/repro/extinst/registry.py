"""The pluggable selection registry: algorithm name -> selector plugin.

Every layer that used to hardcode the two algorithm strings (the api
facade, the engine pipeline's cache keys, ``t1000`` CLI choices,
explore's axis validation, serve's op dispatch, the fuzz differential)
now consults this registry, so adding a selection algorithm is one
:func:`register_selector` call — in the spirit of ByoRISC's pluggable
design-space exploration tools (PAPERS.md).

A plugin is a :class:`SelectorSpec`: the algorithm name, a runner
``(profile, params) -> Selection``, and the declared :class:`Tunable`
fields of :class:`~repro.extinst.params.SelectionParams` the algorithm
actually reads.  The tunables drive three behaviours uniformly:

* ``SelectionParams.normalized()`` resets every *undeclared* field to
  its default, so requests differing only in ignored knobs share cache
  keys and scheduler jobs;
* :func:`selection_cache_extras` turns *non-default* declared tunables
  into extra store-key params — defaults add nothing, which is what
  keeps pre-registry greedy/selective keys byte-identical (warm stores
  keep hitting across the refactor);
* ``t1000 algorithms`` lists them, so the CLI help is sourced from the
  registry rather than a literal table.

Other modules refer to the built-in algorithms through the exported
name constants (:data:`GREEDY`, :data:`SELECTIVE`, :data:`ISEGEN`,
:data:`BASELINE`) rather than string literals, so a grep for quoted
algorithm names outside ``repro.extinst`` stays empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError
from repro.extinst.extraction import ExtractionParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.params import SelectionParams
    from repro.extinst.selection import Selection
    from repro.profiling.profiler import ProgramProfile

#: The built-in algorithm names. Import these instead of spelling the
#: strings: every quoted algorithm literal outside ``repro.extinst`` is
#: a regression (grep-enforced by ``tests/test_registry.py``).
GREEDY = "greedy"
SELECTIVE = "selective"
ISEGEN = "isegen"
#: Not a selector — the unmodified program — but the sentinel shares the
#: constant treatment so axis/spec code never spells it inline either.
BASELINE = "baseline"

#: §5.1 default: keep sequences worth >= 0.5% of application time.
DEFAULT_GAIN_THRESHOLD = 0.005
#: Planning-time reconfiguration latency isegen optimises under.
DEFAULT_RECONFIG_LATENCY = 10
#: KL pass limits: hard cap, and consecutive no-improvement passes.
DEFAULT_MAX_PASSES = 8
DEFAULT_STALL_PASSES = 2

_SCALARS = (int, float, str, bool)


@dataclass(frozen=True)
class Tunable:
    """One :class:`SelectionParams` field an algorithm actually reads."""

    name: str
    default: Any
    doc: str

    def cache_value(self, value: Any) -> Any:
        """The store-key representation (JSON scalars pass through)."""
        if value is None or isinstance(value, _SCALARS):
            return value
        return repr(value)


@dataclass(frozen=True)
class SelectorSpec:
    """A registered selection algorithm.

    ``run`` takes ``(profile, params)`` with ``params`` a fully resolved
    :class:`~repro.extinst.params.SelectionParams` and returns a
    :class:`~repro.extinst.selection.Selection`.  ``uses_select_pfus``
    is False for algorithms that ignore the PFU budget (greedy);
    ``latency_aware`` marks algorithms whose *selection* depends on the
    reconfiguration latency (isegen), which the figures harness uses to
    re-select per latency point.
    """

    name: str
    run: Callable[["ProgramProfile", "SelectionParams"], "Selection"]
    description: str
    uses_select_pfus: bool = True
    latency_aware: bool = False
    tunables: tuple[Tunable, ...] = ()


_REGISTRY: dict[str, SelectorSpec] = {}


def register_selector(spec: SelectorSpec) -> SelectorSpec:
    """Add ``spec`` to the registry; duplicate names are configuration
    errors (a plugin overriding a built-in silently would corrupt cache
    identity)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"selection algorithm {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_selector(name: str) -> None:
    """Remove a selector (test hygiene for plugin round-trips)."""
    _REGISTRY.pop(name, None)


def get_selector(name: str) -> SelectorSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown selection algorithm {name!r} "
            f"(expected one of {registered_algorithms()})"
        )
    return spec


def registered_algorithms() -> tuple[str, ...]:
    """Registered algorithm names, in registration order."""
    return tuple(_REGISTRY)


def selector_specs() -> tuple[SelectorSpec, ...]:
    return tuple(_REGISTRY.values())


def selection_cache_extras(params: "SelectionParams") -> dict[str, Any]:
    """Non-default declared tunables as extra store-key params.

    Defaults contribute nothing, so default-parameter selections keep
    the legacy ``(algorithm, select_pfus)``-only keys — byte-identical
    to the pre-registry pipeline — while any tuned knob splits the key.
    """
    spec = get_selector(params.algorithm)
    extras: dict[str, Any] = {}
    for tunable in spec.tunables:
        value = getattr(params, tunable.name)
        if value != tunable.default:
            extras[tunable.name] = tunable.cache_value(value)
    return extras


def normalize_select_pfus(
    algorithm: str, select_pfus: int | None
) -> int | None:
    """Collapse the PFU budget for algorithms that ignore it."""
    return select_pfus if get_selector(algorithm).uses_select_pfus else None


# ----------------------------------------------------------------------
# built-in selectors (runners import lazily: plugins stay cheap to list)


def _run_greedy(profile, params):
    from repro.extinst.greedy import greedy_select

    return greedy_select(profile, params.extraction)


def _run_selective(profile, params):
    from repro.extinst.selective import selective_select

    return selective_select(
        profile, params.select_pfus, params.selective_params()
    )


def _run_isegen(profile, params):
    from repro.extinst.isegen import isegen_select

    return isegen_select(profile, params.select_pfus, params)


_EXTRACTION = Tunable(
    "extraction", ExtractionParams(),
    "candidate-sequence extraction limits (§4 width/depth/input caps)",
)
_GAIN_THRESHOLD = Tunable(
    "gain_threshold", DEFAULT_GAIN_THRESHOLD,
    "keep sequences worth at least this fraction of total time (§5.1)",
)

register_selector(SelectorSpec(
    name=GREEDY,
    run=_run_greedy,
    description="fold every maximal sequence (§4); ignores the PFU budget",
    uses_select_pfus=False,
    tunables=(_EXTRACTION,),
))

register_selector(SelectorSpec(
    name=SELECTIVE,
    run=_run_selective,
    description=("gain threshold + per-loop PFU budgeting via the "
                 "containment matrix (§5)"),
    tunables=(_GAIN_THRESHOLD, _EXTRACTION),
))

register_selector(SelectorSpec(
    name=ISEGEN,
    run=_run_isegen,
    description=("Kernighan-Lin iterative improvement over the selective "
                 "seed, latency-aware (ISEGEN, PAPERS.md)"),
    latency_aware=True,
    tunables=(
        _GAIN_THRESHOLD,
        _EXTRACTION,
        Tunable("reconfig_latency", DEFAULT_RECONFIG_LATENCY,
                "reconfiguration latency the objective charges per "
                "cold configuration load"),
        Tunable("max_passes", DEFAULT_MAX_PASSES,
                "hard cap on KL improvement passes"),
        Tunable("stall_passes", DEFAULT_STALL_PASSES,
                "stop after this many consecutive passes without "
                "improvement"),
    ),
))


__all__ = [
    "BASELINE",
    "DEFAULT_GAIN_THRESHOLD",
    "DEFAULT_MAX_PASSES",
    "DEFAULT_RECONFIG_LATENCY",
    "DEFAULT_STALL_PASSES",
    "GREEDY",
    "ISEGEN",
    "SELECTIVE",
    "SelectorSpec",
    "Tunable",
    "get_selector",
    "normalize_select_pfus",
    "register_selector",
    "registered_algorithms",
    "selection_cache_extras",
    "selector_specs",
    "unregister_selector",
]
