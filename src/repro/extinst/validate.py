"""Semantic-equivalence validation of rewritten programs.

The rewriter's correctness argument is structural (liveness + input
consistency); this module provides the dynamic check: run original and
rewritten programs and compare observable state. Two kinds of divergence
are legitimate and excluded from the comparison:

- folded interior registers (their defining instructions were deleted
  precisely because the values were dead);
- stack frames: rewriting deletes instructions, so return addresses
  (``jal``'s saved ``$ra``) are different *numbers* for the same control
  flow, and those values get spilled into frames.

What is compared: the full data/heap segments exactly; the stack region
word-by-word with one exemption — a mismatching word is benign when
*both* sides hold text-segment addresses (a spilled return address whose
numeric value shifted with the deleted instructions); the function-result
registers ``$v0``/``$v1``; the stack-pointer balance; and clean halting.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ExtInstError
from repro.extinst.extdef import ExtInstDef
from repro.program.program import Program
from repro.sim.functional import FunctionalSimulator
from repro.sim.memory import PAGE_BITS

_V0, _V1 = 2, 3
_SP = 29
#: pages at or above this address hold the stack (frames may contain
#: saved return addresses, which legitimately differ after rewriting)
STACK_REGION_BASE = 0x7000_0000


def memory_snapshot(memory, include_stack: bool = False) -> dict[int, bytes]:
    """Non-empty pages of a simulator memory, for comparison."""
    stack_page = STACK_REGION_BASE >> PAGE_BITS
    return {
        page: bytes(data)
        for page, data in memory._pages.items()
        if any(data) and (include_stack or page < stack_page)
    }


def validate_equivalence(
    original: Program,
    rewritten: Program,
    ext_defs: Mapping[int, ExtInstDef],
    max_steps: int = 50_000_000,
) -> None:
    """Run both programs; raise :class:`ExtInstError` on any divergence."""
    res_a = FunctionalSimulator(original).run(max_steps=max_steps)
    res_b = FunctionalSimulator(rewritten, ext_defs=ext_defs).run(max_steps=max_steps)

    if not (res_a.halted and res_b.halted):
        raise ExtInstError("one of the programs did not halt cleanly")
    if res_a.regs[_SP] != res_b.regs[_SP]:
        raise ExtInstError(
            f"stack pointers diverged: "
            f"{res_a.regs[_SP]:#x} vs {res_b.regs[_SP]:#x}"
        )
    for reg in (_V0, _V1):
        if res_a.regs[reg] != res_b.regs[reg]:
            raise ExtInstError(
                f"result register ${reg} differs: "
                f"{res_a.regs[reg]:#x} vs {res_b.regs[reg]:#x}"
            )
    mem_a = memory_snapshot(res_a.memory, include_stack=True)
    mem_b = memory_snapshot(res_b.memory, include_stack=True)
    if mem_a.keys() != mem_b.keys():
        raise ExtInstError(
            f"memory page sets differ: {sorted(mem_a)} vs {sorted(mem_b)}"
        )
    stack_page = STACK_REGION_BASE >> PAGE_BITS
    text_lo = 0x0040_0000
    text_hi_a = text_lo + 4 * (len(original.text) + 1)
    text_hi_b = text_lo + 4 * (len(rewritten.text) + 1)
    for page in mem_a:
        data_a, data_b = mem_a[page], mem_b[page]
        if data_a == data_b:
            continue
        if page < stack_page:
            raise ExtInstError(f"memory page {page:#x} contents differ")
        # stack region: allow shifted return addresses only
        for off in range(0, len(data_a), 4):
            wa = int.from_bytes(data_a[off : off + 4], "little")
            wb = int.from_bytes(data_b[off : off + 4], "little")
            if wa == wb:
                continue
            if text_lo <= wa < text_hi_a and text_lo <= wb < text_hi_b:
                continue  # both are code addresses: a relocated $ra spill
            raise ExtInstError(
                f"stack word at {(page << PAGE_BITS) + off:#x} differs: "
                f"{wa:#x} vs {wb:#x}"
            )


def dynamic_instruction_reduction(
    original: Program,
    rewritten: Program,
    ext_defs: Mapping[int, ExtInstDef],
    max_steps: int = 50_000_000,
) -> float:
    """Fraction of dynamic instructions removed by folding (diagnostic)."""
    steps_a = FunctionalSimulator(original).run(max_steps=max_steps).steps
    steps_b = FunctionalSimulator(rewritten, ext_defs=ext_defs).run(
        max_steps=max_steps
    ).steps
    return 1.0 - steps_b / steps_a
