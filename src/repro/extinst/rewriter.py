"""Program rewriting: fold selected sequences into ``ext`` instructions.

For each :class:`RewriteSite` the interior nodes are deleted and the root
is replaced by ``ext rd, rs, rt, conf``. Because control-flow targets are
symbolic labels, deletion is pure list surgery: labels are remapped to the
first surviving instruction at or after their old position (correct
because sequences live strictly inside basic blocks — any label pointing
into a sequence is the block leader, and execution through the block
reaches the root's ``ext``, which performs all folded work).
"""

from __future__ import annotations

from repro.errors import ExtInstError
from repro.extinst.extdef import ExtInstDef
from repro.extinst.selection import Selection
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.program.program import Program


def apply_selection(
    program: Program, selection: Selection
) -> tuple[Program, dict[int, ExtInstDef]]:
    """Rewrite ``program`` per ``selection``.

    Returns the new program and the ``conf -> ExtInstDef`` table the
    simulators need. Raises :class:`ExtInstError` on overlapping sites.
    """
    n = len(program.text)
    deleted: set[int] = set()
    replacement: dict[int, Instruction] = {}

    for site in selection.sites:
        if site.conf not in selection.ext_defs:
            raise ExtInstError(f"site references unknown conf {site.conf}")
        for idx in site.nodes:
            if idx in deleted or idx in replacement:
                raise ExtInstError(
                    f"overlapping rewrite sites at instruction {idx}"
                )
            if not 0 <= idx < n:
                raise ExtInstError(f"rewrite site index {idx} out of range")
        if len(site.input_regs) > 2:
            raise ExtInstError(
                f"site at {site.root} needs {len(site.input_regs)} register "
                "inputs; the ext encoding provides two read ports (§2)"
            )
        rs = site.input_regs[0] if site.input_regs else 0
        rt = site.input_regs[1] if len(site.input_regs) > 1 else 0
        replacement[site.root] = Instruction(
            Opcode.EXT, rd=site.output_reg, rs=rs, rt=rt, conf=site.conf
        )
        deleted.update(site.nodes[:-1])

    new_text: list[Instruction] = []
    new_index_of: list[int] = [0] * (n + 1)  # old index -> new index mapping
    for old in range(n):
        new_index_of[old] = len(new_text)
        if old in deleted:
            continue
        new_text.append(replacement.get(old, program.text[old]))
    new_index_of[n] = len(new_text)

    new_labels = {
        label: new_index_of[idx] for label, idx in program.labels.items()
    }
    rewritten = program.with_text(new_text, new_labels)
    rewritten.name = f"{program.name}+ext"
    rewritten.validate()
    return rewritten, dict(selection.ext_defs)
