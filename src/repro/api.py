"""The stable public facade: five functions, keyword-only, one import.

The paper's toolflow is compile → profile → select → rewrite → simulate;
this module exposes exactly that, hiding which internal module each step
lives in::

    from repro import api

    program = api.compile(source=SRC)              # or workload="gsm_encode"
    profile = api.profile(program=program)
    selection = api.select(profile=profile, algorithm="selective", pfus=2)
    rewritten, ext_defs = api.rewrite(program=program, selection=selection)
    stats = api.simulate(program=rewritten, ext_defs=ext_defs,
                         machine=api.MachineConfig(n_pfus=2,
                                                   reconfig_latency=10))

Every function takes keyword-only arguments and returns the existing
dataclasses (:class:`~repro.program.program.Program`,
:class:`~repro.profiling.ProgramProfile`,
:class:`~repro.extinst.Selection`, :class:`~repro.sim.ooo.SimStats`), so
code written against the facade interoperates with the deeper layers.
The historical entry points (e.g. ``repro.sim.ooo.simulate_program``)
keep working but emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.extinst import (
    SELECTIVE,
    Selection,
    SelectionParams,
    apply_selection,
    run_selection,
    validate_equivalence,
)
from repro.obs import Recorder, enable, get_recorder, observed
from repro.profiling import ProgramProfile, profile_program
from repro.program.program import Program
from repro.sim.ooo import MachineConfig, OoOSimulator, SimStats, simulate_many

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.extdef import ExtInstDef

__all__ = [
    "MachineConfig",
    "SelectionParams",
    "compile",
    "connect",
    "profile",
    "rewrite",
    "select",
    "simulate",
]

_DEFAULT_MAX_STEPS = 50_000_000


def compile(
    *,
    source: str | None = None,
    workload: str | None = None,
    scale: int = 1,
    lang: str | None = None,
    name: str | None = None,
) -> Program:
    """Build a :class:`Program` from source text or a named workload.

    Exactly one of ``source``/``workload`` must be given.  ``lang``
    selects the frontend for ``source``: ``"asm"`` (the T1000 assembler)
    or ``"minic"`` (the bundled C-subset compiler); by default it is
    inferred — sources containing an assembler section directive
    (``.text``/``.data``) assemble, anything else compiles as minic.
    ``scale`` applies to workloads only.
    """
    if (source is None) == (workload is None):
        raise ConfigurationError(
            "pass exactly one of source= or workload= to api.compile"
        )
    if workload is not None:
        if lang is not None:
            raise ConfigurationError("lang= only applies to source=")
        from repro.workloads import build_workload

        return build_workload(workload, scale).program
    if lang is None:
        lang = "asm" if (".text" in source or ".data" in source) else "minic"
    if lang == "asm":
        from repro.asm import assemble

        return assemble(source, name=name or "program")
    if lang == "minic":
        from repro.cc import compile_source

        return compile_source(source, name=name or "minic")
    raise ConfigurationError(
        f"unknown lang {lang!r} (expected 'asm' or 'minic')"
    )


def profile(
    *, program: Program, max_steps: int = _DEFAULT_MAX_STEPS
) -> ProgramProfile:
    """Functionally execute ``program`` and collect the §4 profile
    (execution counts and operand bitwidths)."""
    return profile_program(program, max_steps=max_steps)


#: Distinguishes "pfus not given" from an explicit ``pfus=None``
#: (unlimited budget) in :func:`select`.
_UNSET = object()


def select(
    *,
    profile: ProgramProfile,
    algorithm: str | None = None,
    pfus: "int | None" = _UNSET,  # type: ignore[assignment]
    params: SelectionParams | None = None,
) -> Selection:
    """Choose extended instructions from a profile.

    ``algorithm`` names any selector registered in
    :mod:`repro.extinst.registry` — ``"greedy"`` (§4), ``"selective"``
    (§5, the default), ``"isegen"`` (iterative improvement), or a
    plugin; ``pfus`` is the PFU budget the selection plans for
    (``None`` = unlimited).  Pass ``params`` (a full
    :class:`~repro.extinst.SelectionParams`) to control the algorithm's
    tunables; ``params`` may itself name any registered algorithm.
    Explicit ``algorithm=``/``pfus=`` combine with ``params=`` as
    overrides: a redundant-but-consistent combination is accepted, and
    ``pfus=`` fills in a budget ``params`` left unlimited — but a
    combination that *contradicts* ``params`` raises
    :class:`~repro.errors.ConfigurationError` naming both values.
    """
    from dataclasses import replace as _replace

    if params is None:
        request = SelectionParams(
            algorithm=algorithm if algorithm is not None else SELECTIVE,
            select_pfus=None if pfus is _UNSET else pfus,
        )
    else:
        request = params
        if algorithm is not None and algorithm != params.algorithm:
            raise ConfigurationError(
                f"algorithm={algorithm!r} contradicts "
                f"params.algorithm={params.algorithm!r}"
            )
        if pfus is not _UNSET and pfus != params.select_pfus:
            if params.select_pfus is not None:
                raise ConfigurationError(
                    f"pfus={pfus!r} contradicts "
                    f"params.select_pfus={params.select_pfus!r}"
                )
            request = _replace(params, select_pfus=pfus)
    return run_selection(profile, request)


def rewrite(
    *,
    program: Program,
    selection: Selection,
    validate: bool = True,
) -> tuple[Program, dict[int, "ExtInstDef"]]:
    """Apply ``selection`` to ``program``.

    Returns the rewritten program and its ``conf -> ExtInstDef`` table
    (what both simulators consume).  ``validate=True`` (default) proves
    semantic equivalence against the original before returning.
    """
    rewritten, ext_defs = apply_selection(program, selection)
    if validate:
        validate_equivalence(program, rewritten, ext_defs)
    return rewritten, ext_defs


def simulate(
    *,
    program: Program,
    machine: "MachineConfig | Iterable[MachineConfig] | None" = None,
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    observe: bool | Recorder = False,
    max_steps: int = _DEFAULT_MAX_STEPS,
    jobs: int = 1,
) -> "SimStats | list[SimStats]":
    """Functionally execute ``program`` then replay it through the
    out-of-order timing model.

    ``machine`` defaults to the baseline superscalar
    (:class:`~repro.sim.ooo.MachineConfig` defaults); rewritten programs
    need their ``ext_defs``.  Pass any iterable of machine
    configurations — list, tuple, or a lazy generator streaming a large
    design grid — to sweep them over a single functional execution (one
    trace pass shared across all configurations via
    :func:`~repro.sim.ooo.simulate_many`; a lazy source is drawn exactly
    once); the return value is then a list of
    :class:`~repro.sim.ooo.SimStats` in configuration order.
    ``jobs > 1`` shards the timing replay into trace slices executed
    across worker processes (:mod:`repro.sim.shard`); it is purely an
    execution strategy — results stay byte-identical to ``jobs=1``,
    with automatic serial fallback whenever exactness cannot be
    guaranteed.
    ``observe`` controls observability (:mod:`repro.obs`): pass a
    :class:`~repro.obs.Recorder` to install it for the duration of this
    call, or ``True`` to record into the process-wide recorder, enabling
    a fresh one first if none is active (retrieve it afterwards with
    ``repro.obs.get_recorder()``).
    """
    from repro.sim.functional import FunctionalSimulator

    def run() -> "SimStats | list[SimStats]":
        result = FunctionalSimulator(program, ext_defs=ext_defs).run(
            max_steps=max_steps, collect_trace=True
        )
        if machine is not None and not isinstance(machine, MachineConfig):
            return simulate_many(
                program, result.trace, machine, ext_defs=ext_defs,
                jobs=jobs,
            )
        if jobs > 1:
            from repro.sim.shard import simulate_sharded

            return simulate_sharded(
                program, result.trace, machine, ext_defs=ext_defs,
                jobs=jobs,
            )
        sim = OoOSimulator(program, config=machine, ext_defs=ext_defs)
        return sim.simulate(result.trace)

    if isinstance(observe, Recorder):
        with observed(observe):
            return run()
    if observe and not get_recorder().enabled:
        enable()
    return run()


def connect(address: "str | tuple[str, int]", **kwargs):
    """Connect to a ``t1000 serve`` toolflow service.

    Returns a :class:`~repro.serve.client.ServeClient` whose five
    toolflow methods mirror this module's functions (same keyword
    arguments, same return types), so a script moves from in-process to
    served by swapping ``repro.api`` for ``repro.api.connect(addr)``.
    ``kwargs`` are forwarded (``timeout``, ``retries``, ...).
    """
    from repro.serve.client import connect as _connect

    return _connect(address, **kwargs)
