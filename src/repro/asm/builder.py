"""Programmatic assembly generation.

The synthetic workloads construct their kernels through this builder: it
accumulates source text with automatic unique-label allocation and a
counted-loop helper, then hands the result to the normal assembler, so
generated programs go through exactly the same front end as hand-written
ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.asm.assembler import assemble
from repro.program.program import Program


class AsmBuilder:
    """Accumulates assembly source text."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._data_lines: list[str] = []
        self._text_lines: list[str] = []
        self._label_counter = 0

    # ------------------------------------------------------------------
    # data segment

    def word(self, label: str, values: Sequence[int] | int) -> str:
        """Emit ``label: .word values``; returns the label for convenience."""
        if isinstance(values, int):
            values = [values]
        self._data_lines.append(f"{label}: .word " + ", ".join(map(str, values)))
        return label

    def half(self, label: str, values: Sequence[int]) -> str:
        self._data_lines.append(f"{label}: .half " + ", ".join(map(str, values)))
        return label

    def byte(self, label: str, values: Sequence[int]) -> str:
        self._data_lines.append(f"{label}: .byte " + ", ".join(map(str, values)))
        return label

    def space(self, label: str, nbytes: int, align: int = 4) -> str:
        """Reserve ``nbytes`` zeroed bytes at ``label``."""
        self._data_lines.append(f".align {max(0, align.bit_length() - 1)}")
        self._data_lines.append(f"{label}: .space {nbytes}")
        return label

    # ------------------------------------------------------------------
    # text segment

    def ins(self, *lines: str) -> None:
        """Emit one or more instruction lines."""
        for line in lines:
            self._text_lines.append(f"    {line}")

    def label(self, name: str) -> str:
        self._text_lines.append(f"{name}:")
        return name

    def fresh(self, prefix: str = "L") -> str:
        """Allocate a unique label name."""
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def comment(self, text: str) -> None:
        self._text_lines.append(f"    # {text}")

    @contextmanager
    def counted_loop(self, counter_reg: str, count: int | str) -> Iterator[str]:
        """A down-counting loop running ``count`` times.

        ``count`` may be an integer or a register holding the trip count.
        The loop body must not clobber ``counter_reg``. Yields the loop's
        head label.
        """
        head = self.fresh("loop")
        if isinstance(count, int):
            self.ins(f"li {counter_reg}, {count}")
        elif count != counter_reg:
            self.ins(f"move {counter_reg}, {count}")
        self.label(head)
        yield head
        self.ins(f"addiu {counter_reg}, {counter_reg}, -1")
        self.ins(f"bgtz {counter_reg}, {head}")

    # ------------------------------------------------------------------

    def source(self) -> str:
        """The accumulated assembly source."""
        parts: list[str] = []
        if self._data_lines:
            parts.append(".data")
            parts.extend(self._data_lines)
        parts.append(".text")
        parts.extend(self._text_lines)
        return "\n".join(parts) + "\n"

    def build(self) -> Program:
        """Assemble the accumulated source into a Program."""
        return assemble(self.source(), name=self.name)


def build_program(name: str, data: Iterable[str], text: Iterable[str]) -> Program:
    """One-shot helper: assemble from raw data/text line iterables."""
    builder = AsmBuilder(name)
    builder._data_lines.extend(data)
    builder._text_lines.extend(f"    {line}" for line in text)
    return builder.build()
