"""Disassembly: binary words back to assembly text.

Mainly a debugging/verification aid: encode/disassemble round-trips are
part of the test suite's evidence that the encoder is self-consistent.
"""

from __future__ import annotations

from repro.isa.encoding import TEXT_BASE, decode, encode
from repro.program.program import Program


def encode_program(program: Program) -> list[int]:
    """Encode every text instruction, resolving symbolic targets."""
    words: list[int] = []
    for index, instr in enumerate(program.text):
        numeric: int | None = None
        if instr.target is not None:
            target_index = program.target_index(instr)
            if instr.is_branch:
                numeric = target_index - (index + 1)  # words past next instr
            else:
                numeric = (TEXT_BASE + 4 * target_index) >> 2
        words.append(encode(instr, numeric))
    return words


def disassemble_program(words: list[int], base: int = TEXT_BASE) -> str:
    """Disassemble encoded words into annotated assembly text."""
    lines: list[str] = []
    for index, word in enumerate(words):
        instr, numeric = decode(word)
        pc = base + 4 * index
        text = instr.render()
        if numeric is not None:
            if instr.is_branch:
                target = pc + 4 + 4 * numeric
            else:
                target = numeric << 2
            text = f"{text.rstrip()} <{target:#x}>".replace(" None", "")
        lines.append(f"{pc:#010x}: {word:08x}  {text}")
    return "\n".join(lines)
