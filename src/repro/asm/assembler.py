"""The two-pass assembler.

Pass 1 lays out the data segment (so ``la`` can resolve data symbols) and
collects text labels per expanded-instruction index; because pseudo-op
expansion lengths depend only on operand values (not on label addresses —
branch targets stay symbolic), a single expansion pass suffices for text.
"""

from __future__ import annotations

import struct

from repro.errors import AssemblerError
from repro.asm.parser import (
    SourceLine,
    parse_int,
    parse_line,
    parse_mem_operand,
)
from repro.asm.pseudo import PSEUDO_OPS, OperandParser
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, Opcode, opcode_by_name, opcode_info
from repro.isa.registers import reg_num
from repro.program.program import DATA_BASE, Program

_DATA_DIRECTIVES = {".word", ".half", ".byte", ".space", ".align", ".ascii", ".asciiz"}


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a validated :class:`Program`."""
    lines = [
        parsed
        for lineno, raw in enumerate(source.splitlines(), start=1)
        if (parsed := parse_line(raw, lineno)) is not None
    ]
    data, symbols = _layout_data(lines)
    text, labels = _assemble_text(lines, symbols)
    program = Program(
        text=text, labels=labels, data=bytes(data), symbols=symbols, name=name
    )
    program.validate()
    return program


# ----------------------------------------------------------------------
# data segment


def _layout_data(lines: list[SourceLine]) -> tuple[bytearray, dict[str, int]]:
    data = bytearray()
    symbols: dict[str, int] = {}
    section = ".text"
    for line in lines:
        if line.mnemonic in (".text", ".data"):
            section = line.mnemonic
            _attach_data_labels(line, data, symbols, section)
            continue
        if section != ".data":
            continue
        _attach_data_labels(line, data, symbols, section)
        mn = line.mnemonic
        if mn is None:
            continue
        if mn not in _DATA_DIRECTIVES:
            raise AssemblerError(
                f"unexpected {mn!r} in .data section", line.lineno
            )
        if mn == ".align":
            if len(line.operands) != 1:
                raise AssemblerError(".align expects one operand", line.lineno)
            power = parse_int(line.operands[0], line.lineno)
            _align(data, 1 << power)
            _reattach_labels(line, data, symbols)
        elif mn == ".space":
            if len(line.operands) != 1:
                raise AssemblerError(".space expects one operand", line.lineno)
            count = parse_int(line.operands[0], line.lineno)
            if count < 0:
                raise AssemblerError(".space size must be >= 0", line.lineno)
            data.extend(b"\x00" * count)
        elif mn in (".ascii", ".asciiz"):
            text = ",".join(line.operands).strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblerError(f"{mn} expects a quoted string", line.lineno)
            payload = text[1:-1].encode("utf-8").decode("unicode_escape")
            data.extend(payload.encode("latin-1"))
            if mn == ".asciiz":
                data.append(0)
        else:
            size, pack = {".word": (4, "<i"), ".half": (2, "<h"), ".byte": (1, "<b")}[mn]
            _align(data, size)
            _reattach_labels(line, data, symbols)
            for operand in line.operands:
                value = parse_int(operand, line.lineno)
                lo = -(1 << (8 * size - 1))
                hi = 1 << (8 * size)
                if not lo <= value < hi:
                    raise AssemblerError(
                        f"{mn} value {value} out of range", line.lineno
                    )
                if value >= 1 << (8 * size - 1):
                    value -= 1 << (8 * size)
                data.extend(struct.pack(pack, value))
    return data, symbols


def _align(data: bytearray, boundary: int) -> None:
    while len(data) % boundary:
        data.append(0)


def _attach_data_labels(
    line: SourceLine, data: bytearray, symbols: dict[str, int], section: str
) -> None:
    if section != ".data":
        return
    for label in line.labels:
        if label in symbols:
            raise AssemblerError(f"duplicate data symbol {label!r}", line.lineno)
        symbols[label] = DATA_BASE + len(data)


def _reattach_labels(
    line: SourceLine, data: bytearray, symbols: dict[str, int]
) -> None:
    """After aligning, move this line's labels to the aligned address."""
    for label in line.labels:
        symbols[label] = DATA_BASE + len(data)


# ----------------------------------------------------------------------
# text segment


def _assemble_text(
    lines: list[SourceLine], symbols: dict[str, int]
) -> tuple[list[Instruction], dict[str, int]]:
    text: list[Instruction] = []
    labels: dict[str, int] = {}
    section = ".text"

    def resolve_symbol(token: str) -> int | None:
        return symbols.get(token)

    for line in lines:
        if line.mnemonic in (".text", ".data"):
            section = line.mnemonic
            continue
        if section != ".text":
            continue
        for label in line.labels:
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}", line.lineno)
            labels[label] = len(text)
        if line.mnemonic is None:
            continue
        if line.mnemonic.startswith("."):
            raise AssemblerError(
                f"directive {line.mnemonic!r} not allowed in .text", line.lineno
            )
        text.extend(_expand(line, resolve_symbol))
    return text, labels


def _expand(line: SourceLine, resolve_symbol) -> list[Instruction]:
    mnemonic = line.mnemonic
    assert mnemonic is not None
    ops = line.operands
    lineno = line.lineno

    pseudo = PSEUDO_OPS.get(mnemonic)
    if pseudo is not None:
        parser = OperandParser(
            resolve_symbol, lambda t: parse_int(t, lineno), lineno
        )
        return pseudo(ops, parser)

    op = opcode_by_name(mnemonic)
    if op is None:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno)
    return [_parse_real(op, ops, lineno)]


def _need(ops: list[str], n: int, op: Opcode, lineno: int) -> None:
    if len(ops) != n:
        raise AssemblerError(f"{op} expects {n} operands, got {len(ops)}", lineno)


def _parse_real(op: Opcode, ops: list[str], lineno: int) -> Instruction:
    fmt = opcode_info(op).fmt
    if fmt is Fmt.R3:
        _need(ops, 3, op, lineno)
        return Instruction(
            op, rd=reg_num(ops[0]), rs=reg_num(ops[1]), rt=reg_num(ops[2])
        )
    if fmt is Fmt.R2_IMM:
        _need(ops, 3, op, lineno)
        return Instruction(
            op, rt=reg_num(ops[0]), rs=reg_num(ops[1]), imm=parse_int(ops[2], lineno)
        )
    if fmt is Fmt.SHIFT_IMM:
        _need(ops, 3, op, lineno)
        shamt = parse_int(ops[2], lineno)
        if not 0 <= shamt < 32:
            raise AssemblerError(f"{op}: shift amount {shamt} out of range", lineno)
        return Instruction(op, rd=reg_num(ops[0]), rs=reg_num(ops[1]), imm=shamt)
    if fmt is Fmt.LUI:
        _need(ops, 2, op, lineno)
        return Instruction(op, rt=reg_num(ops[0]), imm=parse_int(ops[1], lineno))
    if fmt is Fmt.MEM:
        _need(ops, 2, op, lineno)
        off_text, base = parse_mem_operand(ops[1], lineno)
        return Instruction(
            op, rt=reg_num(ops[0]), rs=reg_num(base), imm=parse_int(off_text, lineno)
        )
    if fmt is Fmt.BR2:
        _need(ops, 3, op, lineno)
        return Instruction(op, rs=reg_num(ops[0]), rt=reg_num(ops[1]), target=ops[2])
    if fmt is Fmt.BR1:
        _need(ops, 2, op, lineno)
        return Instruction(op, rs=reg_num(ops[0]), target=ops[1])
    if fmt is Fmt.J:
        _need(ops, 1, op, lineno)
        return Instruction(op, target=ops[0])
    if fmt is Fmt.JR:
        _need(ops, 1, op, lineno)
        return Instruction(op, rs=reg_num(ops[0]))
    if fmt is Fmt.JALR:
        _need(ops, 2, op, lineno)
        return Instruction(op, rd=reg_num(ops[0]), rs=reg_num(ops[1]))
    if fmt is Fmt.EXT:
        _need(ops, 4, op, lineno)
        return Instruction(
            op,
            rd=reg_num(ops[0]),
            rs=reg_num(ops[1]),
            rt=reg_num(ops[2]),
            conf=parse_int(ops[3], lineno),
        )
    # Fmt.NONE
    _need(ops, 0, op, lineno)
    return Instruction(op)
