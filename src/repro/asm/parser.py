"""Line-level parsing for the assembler: tokenizing operands, labels and
directives. The grammar is simple enough that regexes per operand shape
are clearer than a separate lexer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(r"^(?P<off>[^()]*)\((?P<base>\$[A-Za-z0-9]+)\)$")


@dataclass
class SourceLine:
    """One significant source line after comment stripping."""

    lineno: int
    labels: list[str] = field(default_factory=list)
    mnemonic: str | None = None       # instruction or directive (with dot)
    operands: list[str] = field(default_factory=list)


def strip_comment(line: str) -> str:
    """Remove ``#`` and ``;`` comments (no string literals in this ASM)."""
    for ch in "#;":
        pos = line.find(ch)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def split_operands(text: str) -> list[str]:
    """Split an operand list on commas, trimming whitespace."""
    if not text.strip():
        return []
    return [part.strip() for part in text.split(",")]


def parse_line(raw: str, lineno: int) -> SourceLine | None:
    """Parse one raw source line. Returns ``None`` for blank lines."""
    text = strip_comment(raw)
    if not text:
        return None
    out = SourceLine(lineno=lineno)
    # Leading labels: "name:" possibly repeated.
    while True:
        match = re.match(r"^([A-Za-z_][A-Za-z0-9_.$]*)\s*:\s*", text)
        if not match:
            break
        label = match.group(1)
        if not _LABEL_RE.match(label):
            raise AssemblerError(f"invalid label {label!r}", lineno)
        out.labels.append(label)
        text = text[match.end():]
    if text:
        parts = text.split(None, 1)
        out.mnemonic = parts[0].lower()
        out.operands = split_operands(parts[1]) if len(parts) > 1 else []
    return out


def parse_int(text: str, lineno: int | None = None) -> int:
    """Parse a decimal/hex/binary/char integer literal."""
    text = text.strip()
    neg = text.startswith("-")
    if neg:
        text = text[1:].strip()
    try:
        if text.lower().startswith("0x"):
            value = int(text, 16)
        elif text.lower().startswith("0b"):
            value = int(text, 2)
        elif len(text) == 3 and text[0] == "'" and text[2] == "'":
            value = ord(text[1])
        else:
            value = int(text, 10)
    except ValueError:
        raise AssemblerError(f"bad integer literal {text!r}", lineno) from None
    return -value if neg else value


def parse_mem_operand(text: str, lineno: int | None = None) -> tuple[str, str]:
    """Parse ``offset($base)`` into ``(offset_text, base_reg_text)``.

    The offset may be empty (meaning 0), a number, or a data symbol.
    """
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AssemblerError(f"bad memory operand {text!r}", lineno)
    off = match.group("off").strip() or "0"
    return off, match.group("base")
