"""Two-pass assembler for the T1000 ISA.

Source format is classic MIPS-style assembly with ``.data``/``.text``
sections, ``.word``/``.half``/``.byte``/``.space``/``.align`` directives,
``#`` comments, and a useful set of pseudo-instructions (``li``, ``la``,
``move``, ``not``, ``neg``, ``b``, ``blt``/``bgt``/``ble``/``bge``,
``subi``/``subiu``).

Use :func:`assemble` for source text, or :class:`AsmBuilder` to generate
source programmatically (the synthetic workloads do this).
"""

from repro.asm.assembler import assemble
from repro.asm.builder import AsmBuilder
from repro.asm.disassembler import disassemble_program

__all__ = ["assemble", "AsmBuilder", "disassemble_program"]
