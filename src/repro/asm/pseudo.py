"""Pseudo-instruction expansion.

Each expander returns a list of real :class:`Instruction` objects. The
assembler's scratch register is ``$at`` (register 1), as on MIPS; user
code that uses ``$at`` across a pseudo-branch is on its own.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AssemblerError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import reg_num
from repro.utils.bitops import to_u32

AT = 1
ZERO = 0

Expander = Callable[[list[str], "OperandParser"], list[Instruction]]


class OperandParser:
    """Callbacks the expanders need from the assembler (symbol lookup etc.)."""

    def __init__(self, resolve_symbol, parse_imm, lineno: int | None):
        self.resolve_symbol = resolve_symbol
        self.parse_imm = parse_imm
        self.lineno = lineno

    def reg(self, text: str) -> int:
        return reg_num(text)

    def imm_or_symbol(self, text: str) -> int:
        """An integer literal or a data-symbol address."""
        text = text.strip()
        addr = self.resolve_symbol(text)
        if addr is not None:
            return addr
        return self.parse_imm(text)


def expand_load_immediate(rt: int, value: int) -> list[Instruction]:
    """Materialise a 32-bit constant into ``rt`` (1 or 2 instructions)."""
    value = to_u32(value)
    signed = value - 0x1_0000_0000 if value & 0x8000_0000 else value
    if -(1 << 15) <= signed < (1 << 15):
        return [Instruction(Opcode.ADDIU, rt=rt, rs=ZERO, imm=signed)]
    if 0 <= value < (1 << 16):
        return [Instruction(Opcode.ORI, rt=rt, rs=ZERO, imm=value)]
    hi, lo = value >> 16, value & 0xFFFF
    out = [Instruction(Opcode.LUI, rt=rt, imm=hi)]
    if lo:
        out.append(Instruction(Opcode.ORI, rt=rt, rs=rt, imm=lo))
    return out


def _need(ops: list[str], n: int, name: str, lineno: int | None) -> None:
    if len(ops) != n:
        raise AssemblerError(f"{name} expects {n} operands, got {len(ops)}", lineno)


def _li(ops: list[str], p: OperandParser) -> list[Instruction]:
    _need(ops, 2, "li", p.lineno)
    return expand_load_immediate(p.reg(ops[0]), p.imm_or_symbol(ops[1]))


def _la(ops: list[str], p: OperandParser) -> list[Instruction]:
    _need(ops, 2, "la", p.lineno)
    addr = p.resolve_symbol(ops[1].strip())
    if addr is None:
        raise AssemblerError(f"la: unknown symbol {ops[1]!r}", p.lineno)
    return expand_load_immediate(p.reg(ops[0]), addr)


def _move(ops: list[str], p: OperandParser) -> list[Instruction]:
    _need(ops, 2, "move", p.lineno)
    return [Instruction(Opcode.ADDU, rd=p.reg(ops[0]), rs=p.reg(ops[1]), rt=ZERO)]


def _not(ops: list[str], p: OperandParser) -> list[Instruction]:
    _need(ops, 2, "not", p.lineno)
    return [Instruction(Opcode.NOR, rd=p.reg(ops[0]), rs=p.reg(ops[1]), rt=ZERO)]


def _neg(ops: list[str], p: OperandParser) -> list[Instruction]:
    _need(ops, 2, "neg", p.lineno)
    return [Instruction(Opcode.SUBU, rd=p.reg(ops[0]), rs=ZERO, rt=p.reg(ops[1]))]


def _b(ops: list[str], p: OperandParser) -> list[Instruction]:
    _need(ops, 1, "b", p.lineno)
    return [Instruction(Opcode.BEQ, rs=ZERO, rt=ZERO, target=ops[0])]


def _beqz(ops: list[str], p: OperandParser) -> list[Instruction]:
    _need(ops, 2, "beqz", p.lineno)
    return [Instruction(Opcode.BEQ, rs=p.reg(ops[0]), rt=ZERO, target=ops[1])]


def _bnez(ops: list[str], p: OperandParser) -> list[Instruction]:
    _need(ops, 2, "bnez", p.lineno)
    return [Instruction(Opcode.BNE, rs=p.reg(ops[0]), rt=ZERO, target=ops[1])]


def _cmp_branch(slt_op: Opcode, swap: bool, br: Opcode, name: str) -> Expander:
    """blt/bge/bgt/ble and unsigned variants via slt + branch on $at."""

    def expand(ops: list[str], p: OperandParser) -> list[Instruction]:
        _need(ops, 3, name, p.lineno)
        a, b = p.reg(ops[0]), p.reg(ops[1])
        if swap:
            a, b = b, a
        return [
            Instruction(slt_op, rd=AT, rs=a, rt=b),
            Instruction(br, rs=AT, rt=ZERO, target=ops[2]),
        ]

    return expand


def _subi(op: Opcode, name: str) -> Expander:
    def expand(ops: list[str], p: OperandParser) -> list[Instruction]:
        _need(ops, 3, name, p.lineno)
        return [
            Instruction(
                op, rt=p.reg(ops[0]), rs=p.reg(ops[1]), imm=-p.parse_imm(ops[2])
            )
        ]

    return expand


PSEUDO_OPS: dict[str, Expander] = {
    "li": _li,
    "la": _la,
    "move": _move,
    "not": _not,
    "neg": _neg,
    "b": _b,
    "beqz": _beqz,
    "bnez": _bnez,
    "blt": _cmp_branch(Opcode.SLT, False, Opcode.BNE, "blt"),
    "bge": _cmp_branch(Opcode.SLT, False, Opcode.BEQ, "bge"),
    "bgt": _cmp_branch(Opcode.SLT, True, Opcode.BNE, "bgt"),
    "ble": _cmp_branch(Opcode.SLT, True, Opcode.BEQ, "ble"),
    "bltu": _cmp_branch(Opcode.SLTU, False, Opcode.BNE, "bltu"),
    "bgeu": _cmp_branch(Opcode.SLTU, False, Opcode.BEQ, "bgeu"),
    "subi": _subi(Opcode.ADDI, "subi"),
    "subiu": _subi(Opcode.ADDIU, "subiu"),
}
