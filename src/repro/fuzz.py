"""Differential fuzzing of the extended-instruction pipeline.

Generates random programs (assembly loops of candidate-class operations,
or minic sources), runs them through profiling → selection → rewriting,
and checks observable equivalence. This is the library form of the
property tests: usable from a CLI (``t1000 fuzz``) or CI job to hammer
the folding machinery for as long as desired.

The campaign also differentially fuzzes the simulators themselves: for
every generated program (and every rewrite of it), the block-compiled
functional interpreter must produce an :class:`ExecutionResult`
identical to the reference loop's, the dense-window timing replay an
identical :class:`SimStats`, and the sharded parallel replay
(:mod:`repro.sim.shard`, run with deliberately tiny slices) an identical
stitched :class:`SimStats` (see :func:`check_simulators`).  Every
generated trace is additionally round-tripped through the binary wire
framing (:func:`check_wire_framing`) to pin the serve path's codec.

All generation is seeded and reproducible; a failure report carries the
seed and the full program text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.asm import assemble
from repro.errors import ReproError
from repro.extinst import (
    SelectionParams,
    apply_selection,
    estimate_cycles_saved,
    run_selection,
    validate_equivalence,
)
from repro.extinst.registry import get_selector, registered_algorithms
from repro.profiling import profile_program
from repro.program.program import Program

_REGS = [f"$t{i}" for i in range(8)]
_OPS2 = ["addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"]
_OPSI = ["addiu", "andi", "ori", "xori", "slti"]
_SHIFTS = ["sll", "srl", "sra"]


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign."""

    runs: int = 0
    folded_sites: int = 0
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"fuzz: {self.runs} programs, {self.folded_sites} folded "
            f"sites, {status}"
        )


def random_asm_program(rng: random.Random, iterations: int = 30) -> str:
    """A random hot loop of narrow candidate operations plus a store."""
    n_ops = rng.randint(4, 14)
    lines: list[str] = []
    for _ in range(n_ops):
        dst = rng.choice(_REGS)
        a = rng.choice(_REGS)
        kind = rng.randrange(3)
        if kind == 0:
            lines.append(f"{rng.choice(_OPS2)} {dst}, {a}, {rng.choice(_REGS)}")
        elif kind == 1:
            lines.append(f"{rng.choice(_OPSI)} {dst}, {a}, {rng.randint(0, 255)}")
        else:
            lines.append(f"{rng.choice(_SHIFTS)} {dst}, {a}, {rng.randint(0, 7)}")
        lines.append(f"andi {dst}, {dst}, 1023")   # stay in the 18-bit regime
    lines.append(f"sw {rng.choice(_REGS)}, 0($sp)")
    init = "\n".join(
        f"    li {reg}, {rng.randint(0, 255)}" for reg in _REGS
    )
    body = "\n".join(f"    {line}" for line in lines)
    return (
        f".text\nmain:\n{init}\n    li $s0, {iterations}\nloop:\n{body}\n"
        "    addiu $s0, $s0, -1\n    bgtz $s0, loop\n"
        "    move $v0, $t0\n    move $v1, $t3\n    halt\n"
    )


def random_minic_program(rng: random.Random) -> str:
    """A random minic source with a hot loop over masked ALU expressions."""
    names = ["a", "b", "c", "d"]
    decls = " ".join(f"int {n} = {rng.randint(0, 99)};" for n in names)
    stmts = []
    for _ in range(rng.randint(2, 8)):
        dst = rng.choice(names)
        x, y = rng.choice(names), rng.choice(names + [str(rng.randint(0, 63))])
        op = rng.choice(["+", "-", "&", "|", "^", "<<", ">>"])
        shift_guard = " & 15" if op in ("<<", ">>") else ""
        stmts.append(f"{dst} = (({x} {op} ({y}{shift_guard})) & 1023);")
    body = " ".join(stmts)
    return (
        "int out;\nint main() { " + decls +
        f" for (int i = 0; i < 20; i++) {{ {body} }}"
        " out = a + b + c + d; return out; }"
    )


def check_wire_framing(trace) -> None:
    """Round-trip ``trace`` through the binary column framing
    (:mod:`repro.wire`) and assert byte identity.

    Every fuzz-generated trace exercises the zero-copy serve path's
    codec: ``decode(encode(t))`` must reproduce both columns exactly,
    and the frame's content digest must be deterministic.  Raises
    ``AssertionError`` on any divergence."""
    from repro import wire

    chunks = wire.trace_chunks(trace)
    decoded = wire.trace_from_bytes(b"".join(chunks))
    assert decoded.indices.tobytes() == trace.indices.tobytes(), \
        "framed trace indices diverged"
    assert decoded.addrs.tobytes() == trace.addrs.tobytes(), \
        "framed trace addresses diverged"
    assert wire.chunks_digest(chunks) == \
        wire.chunks_digest(wire.trace_chunks(decoded)), \
        "trace frame digest not deterministic"


def check_simulators(program: Program, ext_defs=None) -> None:
    """Differentially check the fast simulation paths on ``program``.

    Runs the block-compiled functional interpreter against the reference
    interpreter (architectural state, trace, execution counts, bitwidth
    profile must all match), then replays the trace through the timing
    model with the dense-window fast path and the reference loop
    (``SimStats`` must match field-for-field). Raises ``AssertionError``
    on any divergence.
    """
    import dataclasses

    from repro.extinst.validate import memory_snapshot
    from repro.sim.functional import FunctionalSimulator
    from repro.sim.ooo import MachineConfig, OoOSimulator

    fast = FunctionalSimulator(
        program, ext_defs=ext_defs, compile_blocks=True
    ).run(collect_trace=True, profile=True)
    ref = FunctionalSimulator(
        program, ext_defs=ext_defs, compile_blocks=False
    ).run(collect_trace=True, profile=True)
    assert fast.steps == ref.steps, "step counts diverged"
    assert fast.regs == ref.regs, "register files diverged"
    assert memory_snapshot(fast.memory, include_stack=True) == \
        memory_snapshot(ref.memory, include_stack=True), "memory diverged"
    assert fast.trace.indices == ref.trace.indices, "trace indices diverged"
    assert fast.trace.addrs == ref.trace.addrs, "trace addresses diverged"
    assert fast.exec_counts == ref.exec_counts, "execution counts diverged"
    assert fast.bitwidths.max_operand_width == \
        ref.bitwidths.max_operand_width, "operand widths diverged"
    assert fast.bitwidths.max_result_width == \
        ref.bitwidths.max_result_width, "result widths diverged"
    check_wire_framing(fast.trace)

    config = MachineConfig(n_pfus=2, reconfig_latency=10)
    stats_fast = OoOSimulator(
        program, config=config, ext_defs=ext_defs
    ).simulate(fast.trace)
    slow_cfg = dataclasses.replace(config, sim_fast_path=False)
    stats_slow = OoOSimulator(
        program, config=slow_cfg, ext_defs=ext_defs
    ).simulate(fast.trace)
    assert vars(stats_fast) == vars(stats_slow), "SimStats diverged"

    # Sharded replay must stitch to the exact serial stats even with
    # deliberately tiny slices and warmup (forcing the boundary check
    # and checkpoint-repair machinery on every generated program).
    if len(fast.trace) >= 8:
        from repro.sim.shard import simulate_sharded

        stats_shard = simulate_sharded(
            program, fast.trace, config, ext_defs=ext_defs,
            jobs=1, slices=4, warmup=16,
        )
        assert vars(stats_shard) == vars(stats_fast), \
            "sharded SimStats diverged from serial"


def check_program(program: Program, n_pfus_choices=(1, 2, 4, None)) -> int:
    """Run every *registered* selection algorithm over ``program`` and
    validate each rewrite: semantic equivalence of the rewritten
    program, fast-vs-reference agreement of both simulators on it, and
    the selection-differential property that no selector loses estimated
    cycles to the baseline (the empty selection, which saves exactly
    zero) under the regime that selector planned for — its PFU budget
    (or one PFU per configuration for budget-free selectors) and the
    reconfiguration latency its objective accounted for (zero for
    selectors whose gain model ignores reconfiguration cost).
    Budget-aware selectors are exercised at every budget in
    ``n_pfus_choices``.  Returns the number of folded sites; raises on
    divergence."""
    profile = profile_program(program)
    folded = 0
    check_simulators(program)

    for algorithm in registered_algorithms():
        spec = get_selector(algorithm)
        budgets = n_pfus_choices if spec.uses_select_pfus else (None,)
        for n_pfus in budgets:
            params = SelectionParams(algorithm=algorithm, select_pfus=n_pfus)
            selection = run_selection(profile, params)
            rewritten, defs = apply_selection(program, selection)
            validate_equivalence(program, rewritten, defs)
            check_simulators(rewritten, defs)
            folded += len(selection.sites)

            estimate = estimate_cycles_saved(
                profile, selection,
                n_pfus if n_pfus is not None else max(1, selection.n_configs),
                params.reconfig_latency if spec.latency_aware else 0,
            )
            assert estimate.saved >= 0, (
                f"{algorithm} (pfus={n_pfus}) loses an estimated "
                f"{-estimate.saved} cycle(s) to baseline under its own "
                f"planning regime (fold gain {estimate.fold_gain}, "
                f"reconfiguration cost {estimate.reconfig_cost})"
            )
    return folded


def build_program(seed: int, flavor: str) -> tuple[Program, str]:
    """Regenerate the exact program a campaign built from ``seed``.

    This is the single construction path shared by :func:`run_campaign`
    and :func:`replay`, so a seed printed in a failure report always
    reproduces byte-identical source."""
    if flavor not in ("asm", "minic"):
        raise ValueError(f"unknown program flavor {flavor!r}")
    sub_rng = random.Random(seed)
    if flavor == "minic":
        from repro.cc import compile_source

        source = random_minic_program(sub_rng)
        return compile_source(source), source
    source = random_asm_program(sub_rng)
    return assemble(source), source


def _check_one(seed: int, flavor: str, result: FuzzResult) -> None:
    program, source = build_program(seed, flavor)
    result.runs += 1
    try:
        result.folded_sites += check_program(program)
    except (ReproError, AssertionError) as exc:
        result.failures.append(
            {
                "seed": seed,
                "flavor": flavor,
                "error": str(exc),
                "source": source,
            }
        )


def replay(seed: int, flavor: str) -> FuzzResult:
    """Re-run the one program a failure report identified by its printed
    per-program ``seed`` (not the campaign seed)."""
    result = FuzzResult()
    _check_one(seed, flavor, result)
    return result


def run_campaign(
    n_programs: int = 50,
    seed: int = 0,
    flavor: str = "both",
) -> FuzzResult:
    """Fuzz ``n_programs`` random programs. ``flavor``: "asm", "minic",
    or "both" (alternating).

    ``seed`` seeds the campaign; each program gets its own derived seed,
    printed on failure and replayable via :func:`replay` (or
    ``t1000 fuzz --replay-seed``)."""
    if flavor not in ("asm", "minic", "both"):
        raise ValueError(f"unknown fuzz flavor {flavor!r}")
    rng = random.Random(seed)
    result = FuzzResult()
    for k in range(n_programs):
        use_minic = flavor == "minic" or (flavor == "both" and k % 2 == 1)
        program_seed = rng.randrange(2**31)
        _check_one(program_seed, "minic" if use_minic else "asm", result)
    return result
