"""GSM 06.10 full-rate codec kernels (gsm_encode / gsm_decode).

The encoder reproduces the hot loops of MediaBench's ``gsm`` encoder:
preemphasis (fixed-point multiply by a <1 coefficient), long-term
predictor lag search (sum-of-absolute-differences over candidate lags),
and residual quantisation. The decoder reconstructs: inverse quantiser,
LTP reconstruction, de-emphasis synthesis, and output saturation.

All arithmetic is integer, shift-add based, and bit-exactly mirrored by
the Python references (``encode_reference`` / ``decode_reference``).
"""

from __future__ import annotations

from repro.asm.builder import AsmBuilder
from repro.workloads.base import Workload
from repro.workloads.data import speech_samples
from repro.workloads.idioms import (
    emit_clamp_pow2,
    emit_mulc,
    py_clamp_pow2,
)

SAMPLES = 160          # samples per GSM frame
HIST = 52              # LTP history (max lag)
LAGS = (40, 44, 48, 52)
PRE_COEF = 55          # preemphasis coefficient, /64
QBIAS, QSHIFT = 512, 5  # residual quantiser: q = clamp((r+512)>>5, 0..31) - 16


# ----------------------------------------------------------------------
# references


def preemphasis(samples: list[int]) -> list[int]:
    out = []
    z1 = 0
    for s in samples:
        y = s - ((z1 * PRE_COEF) >> 6)
        out.append(y)
        z1 = s
    return out


def ltp_best_lag(y: list[int]) -> tuple[int, int]:
    """(best lag, its SAD) over the frame tail."""
    best_lag, best_sad = 0, None
    for lag in LAGS:
        sad = 0
        for k in range(HIST, SAMPLES):
            sad += abs(y[k] - y[k - lag])
        if best_sad is None or sad < best_sad:
            best_sad, best_lag = sad, lag
    return best_lag, best_sad


def quantise_residual(y: list[int], lag: int) -> list[int]:
    out = []
    for k in range(HIST, SAMPLES):
        r = y[k] - (y[k - lag] >> 1)
        q = py_clamp_pow2((r + QBIAS) >> QSHIFT, 31) - 16
        out.append(q)
    return out


def encode_reference(samples: list[int], frames: int) -> dict[str, list[int]]:
    out_q: list[int] = []
    out_lag: list[int] = []
    checksum = 0
    for f in range(frames):
        frame = samples[f * SAMPLES : (f + 1) * SAMPLES]
        y = preemphasis(frame)
        lag, _ = ltp_best_lag(y)
        qs = quantise_residual(y, lag)
        out_q.extend(qs)
        out_lag.append(lag)
        checksum += sum(qs) + lag
    return {"out_q": out_q, "out_lag": out_lag, "out_sum": [checksum]}


def dequantise(q: int) -> int:
    return ((q + 16) << QSHIFT) - QBIAS + (1 << (QSHIFT - 1))


def decode_reference(
    qs: list[int], lags: list[int], frames: int
) -> dict[str, list[int]]:
    out_s: list[int] = []
    checksum = 0
    n_tail = SAMPLES - HIST
    for f in range(frames):
        frame_q = qs[f * n_tail : (f + 1) * n_tail]
        lag = lags[f]
        y = [0] * SAMPLES
        for i, q in enumerate(frame_q):
            k = HIST + i
            y[k] = dequantise(q) + (y[k - lag] >> 1)
        s1 = 0
        for i in range(n_tail):
            k = HIST + i
            s = y[k] + ((s1 * PRE_COEF) >> 6)
            s1 = s
            pixel = py_clamp_pow2((s >> 2) + 128, 255)
            out_s.append(pixel)
            checksum += pixel
    return {"out_s": out_s, "out_sum": [checksum]}


# ----------------------------------------------------------------------
# assembly kernels


def build_gsm_encode(scale: int = 1) -> Workload:
    """Build the gsm_encode workload at the given scale (frames = 3*scale)."""
    frames = 3 * scale
    samples = speech_samples(SAMPLES * frames)
    expected = encode_reference(samples, frames)
    n_tail = SAMPLES - HIST

    b = AsmBuilder("gsm_encode")
    b.word("in_s", samples)
    b.space("buf_y", SAMPLES * 4)
    b.space("out_q", n_tail * frames * 4)
    b.space("out_lag", frames * 4)
    b.space("out_sum", 4)

    b.label("main")
    b.ins("la $s1, in_s", "la $s2, buf_y", "la $s3, out_q", "la $s4, out_lag")
    b.ins("li $s5, 0")                       # checksum
    with b.counted_loop("$s0", frames):
        # ---- stage 1: preemphasis ----
        b.ins("li $s6, 0")                   # z1
        b.ins("move $t8, $s1", "move $t9, $s2")
        with b.counted_loop("$s7", SAMPLES):
            b.ins("lw $t0, 0($t8)")
            emit_mulc(b, "$t1", "$s6", PRE_COEF, "$t1", "$t2")
            b.ins("sra $t1, $t1, 6", "subu $t3, $t0, $t1")
            b.ins("sw $t3, 0($t9)", "move $s6, $t0")
            b.ins("addiu $t8, $t8, 4", "addiu $t9, $t9, 4")
        # ---- stage 2: LTP lag search (unrolled over candidate lags) ----
        b.ins("lui $a0, 0x7fff", "ori $a0, $a0, 0xffff")  # best SAD = INT_MAX
        b.ins("li $a1, 0")                   # best lag
        for lag in LAGS:
            b.ins("li $a2, 0")               # sad accumulator
            b.ins(f"addiu $t8, $s2, {HIST * 4}",
                  f"addiu $t9, $s2, {(HIST - lag) * 4}")
            with b.counted_loop("$s7", n_tail):
                b.ins("lw $t0, 0($t8)", "lw $t1, 0($t9)")
                b.ins("subu $t2, $t0, $t1",
                      "sra $t3, $t2, 31",
                      "xor $t2, $t2, $t3",
                      "subu $t2, $t2, $t3",
                      "addu $a2, $a2, $t2")
                b.ins("addiu $t8, $t8, 4", "addiu $t9, $t9, 4")
            skip = b.fresh("keep")
            b.ins(f"slt $t0, $a2, $a0", f"beq $t0, $zero, {skip}")
            b.ins("move $a0, $a2", f"li $a1, {lag}")
            b.label(skip)
        b.ins("sw $a1, 0($s4)", "addiu $s4, $s4, 4")
        b.ins("addu $s5, $s5, $a1")
        # ---- stage 3: residual quantisation with the best lag ----
        b.ins(f"addiu $t8, $s2, {HIST * 4}")
        b.ins("sll $t0, $a1, 2", "subu $t9, $t8, $t0")
        with b.counted_loop("$s7", n_tail):
            b.ins("lw $t0, 0($t8)", "lw $t1, 0($t9)")
            b.ins("sra $t1, $t1, 1", "subu $t2, $t0, $t1")
            b.ins(f"addiu $t2, $t2, {QBIAS}", f"sra $t2, $t2, {QSHIFT}")
            emit_clamp_pow2(b, "$t2", "$t2", 31, "$t3", "$t4", "$t5")
            b.ins("addiu $t2, $t2, -16")
            b.ins("sw $t2, 0($s3)", "addiu $s3, $s3, 4")
            b.ins("addu $s5, $s5, $t2")
            b.ins("addiu $t8, $t8, 4", "addiu $t9, $t9, 4")
        b.ins(f"addiu $s1, $s1, {SAMPLES * 4}")
    b.ins("la $t0, out_sum", "sw $s5, 0($t0)", "move $v0, $s5", "halt")

    return Workload(
        name="gsm_encode",
        program=b.build(),
        expected=expected,
        description="GSM full-rate encoder: preemphasis, LTP lag search, "
        "residual quantisation",
        scale=scale,
    )


def build_gsm_decode(scale: int = 1) -> Workload:
    """Build the gsm_decode workload (frames = 6*scale)."""
    frames = 6 * scale
    samples = speech_samples(SAMPLES * frames)
    enc = encode_reference(samples, frames)
    qs, lags = enc["out_q"], enc["out_lag"]
    expected = decode_reference(qs, lags, frames)
    n_tail = SAMPLES - HIST

    b = AsmBuilder("gsm_decode")
    b.word("in_q", qs)
    b.word("in_lag", lags)
    b.space("buf_y", SAMPLES * 4)
    b.space("out_s", n_tail * frames * 4)
    b.space("out_sum", 4)

    b.label("main")
    b.ins("la $s1, in_q", "la $s2, buf_y", "la $s3, out_s", "la $s4, in_lag")
    b.ins("li $s5, 0")                       # checksum
    with b.counted_loop("$s0", frames):
        # zero the history region of buf_y
        b.ins("move $t8, $s2")
        with b.counted_loop("$s7", SAMPLES):
            b.ins("sw $zero, 0($t8)", "addiu $t8, $t8, 4")
        b.ins("lw $a1, 0($s4)", "addiu $s4, $s4, 4")    # lag
        # ---- LTP reconstruction ----
        b.ins(f"addiu $t8, $s2, {HIST * 4}")
        b.ins("sll $t0, $a1, 2", "subu $t9, $t8, $t0")
        with b.counted_loop("$s7", n_tail):
            b.ins("lw $t0, 0($s1)", "addiu $s1, $s1, 4")
            b.ins(
                "addiu $t1, $t0, 16",
                f"sll $t1, $t1, {QSHIFT}",
                f"addiu $t1, $t1, {-QBIAS + (1 << (QSHIFT - 1))}",
            )
            b.ins("lw $t2, 0($t9)", "sra $t2, $t2, 1", "addu $t1, $t1, $t2")
            b.ins("sw $t1, 0($t8)")
            b.ins("addiu $t8, $t8, 4", "addiu $t9, $t9, 4")
        # ---- de-emphasis + saturating output ----
        b.ins(f"addiu $t8, $s2, {HIST * 4}", "li $s6, 0")   # s1 state
        with b.counted_loop("$s7", n_tail):
            b.ins("lw $t0, 0($t8)", "addiu $t8, $t8, 4")
            emit_mulc(b, "$t1", "$s6", PRE_COEF, "$t1", "$t2")
            b.ins("sra $t1, $t1, 6", "addu $t3, $t0, $t1")
            b.ins("move $s6, $t3")
            b.ins("sra $t4, $t3, 2", "addiu $t4, $t4, 128")
            emit_clamp_pow2(b, "$t4", "$t4", 255, "$t5", "$t6", "$t7")
            b.ins("sw $t4, 0($s3)", "addiu $s3, $s3, 4")
            b.ins("addu $s5, $s5, $t4")
    b.ins("la $t0, out_sum", "sw $s5, 0($t0)", "move $v0, $s5", "halt")

    return Workload(
        name="gsm_decode",
        program=b.build(),
        expected=expected,
        description="GSM full-rate decoder: inverse quantiser, LTP "
        "reconstruction, de-emphasis, saturation",
        scale=scale,
    )
