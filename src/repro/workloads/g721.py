"""G.721-class ADPCM codec kernels (g721_encode / g721_decode).

MediaBench's G.721 codec is adaptive differential PCM: a predictor, an
adaptive quantiser with a step-size table, and index adaptation. We
implement the classic IMA/DVI ADPCM core, which shares the structure and
— crucially for this paper — the *character* of G.721: the inner loop is
dominated by table loads, data-dependent branches and short arithmetic,
leaving few long foldable ALU chains. That is why the paper's G.721
speedups are the smallest of the suite (≈4.5%), and this kernel
reproduces that regime.
"""

from __future__ import annotations

from repro.asm.builder import AsmBuilder
from repro.workloads.base import Workload
from repro.workloads.data import speech_samples

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


# ----------------------------------------------------------------------
# references (classic IMA ADPCM)


def encode_reference(samples: list[int]) -> dict[str, list[int]]:
    valpred, index = 0, 0
    codes: list[int] = []
    checksum = 0
    esum = 0
    for s in samples:
        step = STEP_TABLE[index]
        diff = s - valpred
        esum += abs(diff) >> 2   # prediction-error energy (narrow ALU chain)
        if diff < 0:
            code = 8
            diff = -diff
        else:
            code = 0
        vpdiff = step >> 3
        if diff >= step:
            code |= 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            code |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            code |= 1
            vpdiff += step
        if code & 8:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        valpred = max(-32768, min(32767, valpred))
        index += INDEX_TABLE[code]
        index = max(0, min(88, index))
        codes.append(code)
        checksum += code
    return {
        "out_code": codes,
        "out_pred": [valpred],
        "out_sum": [checksum],
        "out_esum": [esum],
    }


def decode_reference(codes: list[int]) -> dict[str, list[int]]:
    valpred, index = 0, 0
    out: list[int] = []
    checksum = 0
    esum = 0
    for code in codes:
        step = STEP_TABLE[index]
        vpdiff = step >> 3
        if code & 4:
            vpdiff += step
        if code & 2:
            vpdiff += step >> 1
        if code & 1:
            vpdiff += step >> 2
        if code & 8:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        valpred = max(-32768, min(32767, valpred))
        index += INDEX_TABLE[code]
        index = max(0, min(88, index))
        out.append(valpred)
        checksum += valpred
        # output smoothness metric: |second difference| energy
        prev = out[-2] if len(out) >= 2 else 0
        prev2 = out[-3] if len(out) >= 3 else 0
        d2 = valpred - 2 * prev + prev2
        esum += abs(d2) >> 3
    return {"out_s": out, "out_sum": [checksum], "out_esum": [esum]}


# ----------------------------------------------------------------------
# shared emit helpers


def _emit_clamp_branchy(b: AsmBuilder, reg: str, lo: int, hi: int) -> None:
    """Branch-based clamp, as the original C codec compiles: real G.721
    inner loops are full of these unfoldable compare-and-branch shapes."""
    ok_lo = b.fresh("clo")
    ok_hi = b.fresh("chi")
    b.ins(f"li $at, {lo}", f"slt $t7, {reg}, $at", f"beq $t7, $zero, {ok_lo}")
    b.ins(f"li {reg}, {lo}")
    b.label(ok_lo)
    b.ins(f"li $at, {hi}", f"slt $t7, $at, {reg}", f"beq $t7, $zero, {ok_hi}")
    b.ins(f"li {reg}, {hi}")
    b.label(ok_hi)


def build_g721_encode(scale: int = 1) -> Workload:
    """ADPCM encoder over 16-bit-scaled speech (n = 1000 * scale samples)."""
    n = 1000 * scale
    raw = speech_samples(n, seed=0xADC0)
    samples = [s << 6 for s in raw]   # scale to ~13-bit dynamic range
    expected = encode_reference(samples)

    b = AsmBuilder("g721_encode")
    b.word("step_tab", STEP_TABLE)
    b.word("index_tab", INDEX_TABLE)
    b.word("in_s", samples)
    b.space("out_code", n * 4)
    b.space("out_pred", 4)
    b.space("out_sum", 4)
    b.space("out_esum", 4)

    b.label("main")
    b.ins("la $s1, in_s", "la $s2, out_code")
    b.ins("la $s3, step_tab", "la $s4, index_tab")
    b.ins("li $s5, 0")      # valpred
    b.ins("li $s6, 0")      # index
    b.ins("li $s7, 0")      # checksum
    b.ins("li $v1, 0")      # error energy
    with b.counted_loop("$s0", n):
        b.ins("sll $t0, $s6, 2", "addu $t0, $s3, $t0", "lw $t1, 0($t0)")  # step
        b.ins("lw $t2, 0($s1)", "addiu $s1, $s1, 4")
        b.ins("subu $t3, $t2, $s5")                     # diff
        b.ins("sra $t6, $t3, 31",                       # error-energy chain
              "xor $t5, $t3, $t6",
              "subu $t5, $t5, $t6",
              "sra $t5, $t5, 2",
              "addu $v1, $v1, $t5")
        pos = b.fresh("pos")
        b.ins(f"bgez $t3, {pos}")
        b.ins("li $a0, 8", "subu $t3, $zero, $t3")
        after = b.fresh("sgn")
        b.ins(f"b {after}")
        b.label(pos)
        b.ins("li $a0, 0")
        b.label(after)
        b.ins("sra $a1, $t1, 3")                        # vpdiff = step>>3
        for bit, mask in ((4, 4), (2, 2), (1, 1)):
            skip = b.fresh("q")
            b.ins(f"slt $t7, $t3, $t1", f"bne $t7, $zero, {skip}")
            b.ins(f"ori $a0, $a0, {mask}")
            if bit != 1:
                b.ins("subu $t3, $t3, $t1")
            b.ins("addu $a1, $a1, $t1")
            b.label(skip)
            if bit != 1:
                b.ins("sra $t1, $t1, 1")
        neg = b.fresh("neg")
        done = b.fresh("upd")
        b.ins("andi $t7, $a0, 8", f"bne $t7, $zero, {neg}")
        b.ins("addu $s5, $s5, $a1", f"b {done}")
        b.label(neg)
        b.ins("subu $s5, $s5, $a1")
        b.label(done)
        _emit_clamp_branchy(b, "$s5", -32768, 32767)
        b.ins("sll $t0, $a0, 2", "addu $t0, $s4, $t0", "lw $t1, 0($t0)")
        b.ins("addu $s6, $s6, $t1")
        _emit_clamp_branchy(b, "$s6", 0, 88)
        b.ins("sw $a0, 0($s2)", "addiu $s2, $s2, 4")
        b.ins("addu $s7, $s7, $a0")
    b.ins("la $t0, out_pred", "sw $s5, 0($t0)")
    b.ins("la $t0, out_esum", "sw $v1, 0($t0)")
    b.ins("la $t0, out_sum", "sw $s7, 0($t0)", "move $v0, $s7", "halt")

    return Workload(
        name="g721_encode",
        program=b.build(),
        expected=expected,
        description="ADPCM encoder: adaptive quantiser with step/index "
        "tables (control- and load-dominated)",
        scale=scale,
    )


def build_g721_decode(scale: int = 1) -> Workload:
    """ADPCM decoder (n = 1400 * scale codes)."""
    n = 1400 * scale
    raw = speech_samples(n, seed=0xADC1)
    samples = [s << 6 for s in raw]
    codes = encode_reference(samples)["out_code"]
    expected = decode_reference(codes)

    b = AsmBuilder("g721_decode")
    b.word("step_tab", STEP_TABLE)
    b.word("index_tab", INDEX_TABLE)
    b.word("in_code", codes)
    b.space("out_s", n * 4)
    b.space("out_sum", 4)
    b.space("out_esum", 4)

    b.label("main")
    b.ins("la $s1, in_code", "la $s2, out_s")
    b.ins("la $s3, step_tab", "la $s4, index_tab")
    b.ins("li $s5, 0", "li $s6, 0", "li $s7, 0")
    b.ins("li $v1, 0", "li $a2, 0", "li $a3, 0")   # esum, prev, prev2
    with b.counted_loop("$s0", n):
        b.ins("sll $t0, $s6, 2", "addu $t0, $s3, $t0", "lw $t1, 0($t0)")  # step
        b.ins("lw $a0, 0($s1)", "addiu $s1, $s1, 4")                      # code
        b.ins("sra $a1, $t1, 3")
        for mask, shift in ((4, 0), (2, 1), (1, 2)):
            skip = b.fresh("d")
            b.ins(f"andi $t7, $a0, {mask}", f"beq $t7, $zero, {skip}")
            if shift:
                b.ins(f"sra $t2, $t1, {shift}", "addu $a1, $a1, $t2")
            else:
                b.ins("addu $a1, $a1, $t1")
            b.label(skip)
        neg = b.fresh("neg")
        done = b.fresh("upd")
        b.ins("andi $t7, $a0, 8", f"bne $t7, $zero, {neg}")
        b.ins("addu $s5, $s5, $a1", f"b {done}")
        b.label(neg)
        b.ins("subu $s5, $s5, $a1")
        b.label(done)
        _emit_clamp_branchy(b, "$s5", -32768, 32767)
        b.ins("sll $t0, $a0, 2", "addu $t0, $s4, $t0", "lw $t1, 0($t0)")
        b.ins("addu $s6, $s6, $t1")
        _emit_clamp_branchy(b, "$s6", 0, 88)
        b.ins("sw $s5, 0($s2)", "addiu $s2, $s2, 4")
        b.ins("addu $s7, $s7, $s5")
        # smoothness metric: esum += abs(cur - 2*prev + prev2) >> 3
        b.ins("sll $t2, $a2, 1",
              "subu $t3, $s5, $t2",
              "addu $t3, $t3, $a3",
              "sra $t4, $t3, 31",
              "xor $t3, $t3, $t4",
              "subu $t3, $t3, $t4",
              "sra $t3, $t3, 3",
              "addu $v1, $v1, $t3")
        b.ins("move $a3, $a2", "move $a2, $s5")
    b.ins("la $t0, out_esum", "sw $v1, 0($t0)")
    b.ins("la $t0, out_sum", "sw $s7, 0($t0)", "move $v0, $s7", "halt")

    return Workload(
        name="g721_decode",
        program=b.build(),
        expected=expected,
        description="ADPCM decoder: table-driven reconstruction with "
        "saturating predictor update",
        scale=scale,
    )
