"""EPIC image-coder kernels (epic / unepic).

MediaBench's EPIC is a wavelet (pyramid) image coder. The encoder here
performs a two-level separable Haar-lifting pyramid decomposition of a
32x32 tile followed by dead-zone quantisation of the coefficients; the
decoder (unepic) inverse-quantises and reconstructs with saturation —
the same transform/quantise/reconstruct cores the original spends its
time in. The quantiser/dequantiser are branchless sign-magnitude chains,
the signature workload shape for PFU folding.
"""

from __future__ import annotations

from repro.asm.builder import AsmBuilder
from repro.workloads.base import Workload
from repro.workloads.data import image_tile
from repro.workloads.idioms import emit_clamp255, py_clamp255

SIZE = 32              # tile edge (words)
LEVELS = 2
QT, QS = 4, 2          # dead-zone threshold and shift


# ----------------------------------------------------------------------
# references


def lift(vec: list[int]) -> list[int]:
    """One Haar-lifting pass: [s half | d half]."""
    half = len(vec) // 2
    s_half, d_half = [], []
    for i in range(half):
        x0, x1 = vec[2 * i], vec[2 * i + 1]
        d = x0 - x1
        s = x1 + (d >> 1)
        s_half.append(s)
        d_half.append(d)
    return s_half + d_half


def unlift(vec: list[int]) -> list[int]:
    half = len(vec) // 2
    out = [0] * len(vec)
    for i in range(half):
        s, d = vec[i], vec[half + i]
        x1 = s - (d >> 1)
        x0 = d + x1
        out[2 * i], out[2 * i + 1] = x0, x1
    return out


def _apply_rows(img: list[int], level: int, fn) -> None:
    for y in range(level):
        row = [img[y * SIZE + x] for x in range(level)]
        for x, v in enumerate(fn(row)):
            img[y * SIZE + x] = v


def _apply_cols(img: list[int], level: int, fn) -> None:
    for x in range(level):
        col = [img[y * SIZE + x] for y in range(level)]
        for y, v in enumerate(fn(col)):
            img[y * SIZE + x] = v


def pyramid_forward(img: list[int]) -> list[int]:
    out = list(img)
    level = SIZE
    for _ in range(LEVELS):
        _apply_rows(out, level, lift)
        _apply_cols(out, level, lift)
        level //= 2
    return out


def pyramid_inverse(coeffs: list[int]) -> list[int]:
    out = list(coeffs)
    level = SIZE >> (LEVELS - 1)
    for _ in range(LEVELS):
        _apply_cols(out, level, unlift)
        _apply_rows(out, level, unlift)
        level *= 2
    return out


def quantise(c: int) -> int:
    m = (abs(c) - QT) >> QS
    if m < 0:
        m = 0
    return -m if c < 0 else m


def dequantise(q: int) -> int:
    if q == 0:
        return 0
    m = (abs(q) << QS) + QT + 2
    return -m if q < 0 else m


def code_bits(q: int) -> int:
    """Size-class entropy-coding cost of one coefficient: 2 bits for the
    dead zone / ±1 class, +3 for |q| >= 2, +4 more for |q| >= 8 (the
    shape of EPIC's magnitude-class Huffman tables)."""
    mag = abs(q)
    ge2 = 1 if mag >= 2 else 0
    ge8 = 1 if mag >= 8 else 0
    return 2 + 3 * ge2 + 4 * ge8


def epic_reference(img: list[int]) -> dict[str, list[int]]:
    coeffs = pyramid_forward(img)
    qs = [quantise(c) for c in coeffs]
    # band energy: |q| accumulated alongside quantisation (a second
    # dependent chain in the hot loop, as real coders track rate)
    energy = sum((abs(q) + 1) >> 1 for q in qs)
    # entropy-coder budget: the bit-packing pass over the coefficients
    bits = sum(code_bits(q) for q in qs)
    return {
        "out_q": qs,
        "out_sum": [sum(qs)],
        "out_energy": [energy],
        "out_bits": [bits],
    }


def unepic_reference(qs: list[int]) -> dict[str, list[int]]:
    coeffs = [dequantise(q) for q in qs]
    rec = pyramid_inverse(coeffs)
    pixels = [py_clamp255(v) for v in rec]
    # display-chain metric: rounding-average of adjacent output pixels
    # (the half-pel interpolation every viewer applies)
    smooth = sum(
        (pixels[i] + pixels[i + 1] + 1) >> 1 for i in range(len(pixels) - 1)
    )
    return {
        "out_pix": pixels,
        "out_sum": [sum(pixels)],
        "out_smooth": [smooth],
    }


# ----------------------------------------------------------------------
# assembly emitters


def _emit_lift_pass(b: AsmBuilder, half: int, stride: int) -> None:
    """Forward-lift the vector at $a0 (count=2*half, byte stride) via the
    scratch buffer at $a1, then copy back."""
    b.ins("move $t8, $a0", f"addiu $t9, $a0, {stride}", "move $a2, $a1")
    b.ins(f"addiu $a3, $a1, {half * 4}")
    with b.counted_loop("$s7", half):
        b.ins("lw $t0, 0($t8)", "lw $t1, 0($t9)")
        b.ins("subu $t2, $t0, $t1",       # d
              "sra $t3, $t2, 1",
              "addu $t4, $t1, $t3")       # s
        b.ins("sw $t4, 0($a2)", "sw $t2, 0($a3)")
        b.ins(f"addiu $t8, $t8, {2 * stride}", f"addiu $t9, $t9, {2 * stride}")
        b.ins("addiu $a2, $a2, 4", "addiu $a3, $a3, 4")
    _emit_copy_back(b, 2 * half, stride)


def _emit_unlift_pass(b: AsmBuilder, half: int, stride: int) -> None:
    """Inverse-lift the vector at $a0 via scratch at $a1, then copy back."""
    b.ins("move $t8, $a0", f"addiu $t9, $a0, {half * stride}", "move $a2, $a1")
    with b.counted_loop("$s7", half):
        b.ins("lw $t0, 0($t8)", "lw $t1, 0($t9)")     # s, d
        b.ins("sra $t2, $t1, 1",
              "subu $t3, $t0, $t2",       # x1
              "addu $t4, $t1, $t3")       # x0
        b.ins("sw $t4, 0($a2)", "sw $t3, 4($a2)")
        b.ins(f"addiu $t8, $t8, {stride}", f"addiu $t9, $t9, {stride}")
        b.ins("addiu $a2, $a2, 8")
    _emit_copy_back(b, 2 * half, stride)


def _emit_copy_back(b: AsmBuilder, count: int, stride: int) -> None:
    b.ins("move $t8, $a1", "move $t9, $a0")
    with b.counted_loop("$s7", count):
        b.ins("lw $t0, 0($t8)", "sw $t0, 0($t9)")
        b.ins("addiu $t8, $t8, 4", f"addiu $t9, $t9, {stride}")


def _emit_2d_pass(b: AsmBuilder, level: int, inverse: bool) -> None:
    """Apply lifting to rows and columns of the level x level corner of the
    image at $s1, scratch at $s2. Forward: rows then cols; inverse: cols
    then rows."""
    passes = [("cols", SIZE * 4), ("rows", 4)] if inverse else [
        ("rows", 4), ("cols", SIZE * 4)
    ]
    for which, stride in passes:
        outer_step = SIZE * 4 if which == "rows" else 4
        b.ins("move $s6, $s1")
        with b.counted_loop("$s5", level):
            b.ins("move $a0, $s6", "move $a1, $s2")
            if inverse:
                _emit_unlift_pass(b, level // 2, stride)
            else:
                _emit_lift_pass(b, level // 2, stride)
            b.ins(f"addiu $s6, $s6, {outer_step}")


def build_epic(scale: int = 1) -> Workload:
    """Wavelet encoder over ``scale`` 32x32 tiles."""
    tiles = [image_tile(SIZE, SIZE, seed=0x1316 + t) for t in range(scale)]
    expected_q: list[int] = []
    checksum = 0
    energy = 0
    bits = 0
    for tile in tiles:
        ref = epic_reference(tile)
        expected_q.extend(ref["out_q"])
        checksum += ref["out_sum"][0]
        energy += ref["out_energy"][0]
        bits += ref["out_bits"][0]
    expected = {
        "out_q": expected_q,
        "out_sum": [checksum],
        "out_energy": [energy],
        "out_bits": [bits],
    }

    b = AsmBuilder("epic")
    flat = [p for tile in tiles for p in tile]
    b.word("in_img", flat)
    b.space("buf_img", SIZE * SIZE * 4)
    b.space("buf_tmp", SIZE * 4)
    b.space("out_q", SIZE * SIZE * len(tiles) * 4)
    b.space("out_sum", 4)
    b.space("out_energy", 4)
    b.space("out_bits", 4)

    b.label("main")
    b.ins("la $s3, in_img", "la $s4, out_q", "li $v1, 0", "li $fp, 0")
    b.ins("li $gp, 0")    # entropy-coder bit budget
    with b.counted_loop("$s0", len(tiles)):
        # copy tile into working buffer
        b.ins("la $s1, buf_img", "la $s2, buf_tmp", "move $t8, $s3", "move $t9, $s1")
        with b.counted_loop("$s7", SIZE * SIZE):
            b.ins("lw $t0, 0($t8)", "sw $t0, 0($t9)",
                  "addiu $t8, $t8, 4", "addiu $t9, $t9, 4")
        level = SIZE
        for _ in range(LEVELS):
            _emit_2d_pass(b, level, inverse=False)
            level //= 2
        # dead-zone quantisation of all coefficients
        b.ins("move $t8, $s1")
        with b.counted_loop("$s7", SIZE * SIZE):
            b.ins("lw $t0, 0($t8)", "addiu $t8, $t8, 4")
            b.ins("sra $t1, $t0, 31",
                  "xor $t2, $t0, $t1",
                  "subu $t2, $t2, $t1",            # abs(c)
                  f"addiu $t2, $t2, {-QT}",
                  f"sra $t2, $t2, {QS}",
                  "sra $t3, $t2, 31",
                  "nor $t3, $t3, $zero",
                  "and $t2, $t2, $t3",             # max(0, .)
                  "xor $t2, $t2, $t1",
                  "subu $t2, $t2, $t1")            # restore sign
            b.ins("sw $t2, 0($s4)", "addiu $s4, $s4, 4", "addu $v1, $v1, $t2")
            b.ins("sra $t4, $t2, 31",              # band-energy chain
                  "xor $t5, $t2, $t4",
                  "subu $t5, $t5, $t4",
                  "addiu $t5, $t5, 1",
                  "sra $t5, $t5, 1",
                  "addu $fp, $fp, $t5")
        # ---- entropy-coder bit budget (the bit-packing pass) ----
        b.ins(f"addiu $t8, $s4, {-(SIZE * SIZE * 4)}")   # tile's coefficients
        with b.counted_loop("$s7", SIZE * SIZE):
            b.ins("lw $t0, 0($t8)", "addiu $t8, $t8, 4")
            b.ins("sra $t1, $t0, 31",
                  "xor $t2, $t0, $t1",
                  "subu $t2, $t2, $t1")              # mag
            b.ins("slti $t3, $t2, 2",
                  "xori $t3, $t3, 1",                # mag >= 2
                  "slti $t4, $t2, 8",
                  "xori $t4, $t4, 1")                # mag >= 8
            b.ins("sll $t5, $t3, 1",
                  "addu $t5, $t5, $t3",              # 3 * ge2
                  "sll $t6, $t4, 2",                 # 4 * ge8
                  "addu $t5, $t5, $t6",
                  "addiu $t5, $t5, 2")               # bits
            b.ins("addu $gp, $gp, $t5")
        b.ins(f"addiu $s3, $s3, {SIZE * SIZE * 4}")
    b.ins("la $t0, out_energy", "sw $fp, 0($t0)")
    b.ins("la $t0, out_bits", "sw $gp, 0($t0)")
    b.ins("la $t0, out_sum", "sw $v1, 0($t0)", "move $v0, $v1", "halt")

    return Workload(
        name="epic",
        program=b.build(),
        expected=expected,
        description="EPIC encoder: 2-level Haar pyramid + dead-zone "
        "quantisation",
        scale=scale,
    )


def build_unepic(scale: int = 1) -> Workload:
    """Wavelet decoder over ``scale + 1`` tiles (unepic is the lighter app)."""
    n_tiles = scale + 1
    tiles = [image_tile(SIZE, SIZE, seed=0x7e57 + t) for t in range(n_tiles)]
    in_q: list[int] = []
    expected_pix: list[int] = []
    checksum = 0
    smooth = 0
    for tile in tiles:
        qs = epic_reference(tile)["out_q"]
        in_q.extend(qs)
        ref = unepic_reference(qs)
        expected_pix.extend(ref["out_pix"])
        checksum += ref["out_sum"][0]
        smooth += ref["out_smooth"][0]
    expected = {
        "out_pix": expected_pix,
        "out_sum": [checksum],
        "out_smooth": [smooth],
    }

    b = AsmBuilder("unepic")
    b.word("in_q", in_q)
    b.space("buf_img", SIZE * SIZE * 4)
    b.space("buf_tmp", SIZE * 4)
    b.space("out_pix", SIZE * SIZE * n_tiles * 4)
    b.space("out_sum", 4)
    b.space("out_smooth", 4)

    b.label("main")
    b.ins("la $s3, in_q", "la $s4, out_pix", "li $v1, 0", "li $gp, 0")
    with b.counted_loop("$s0", n_tiles):
        b.ins("la $s1, buf_img", "la $s2, buf_tmp", "move $t8, $s3", "move $t9, $s1")
        # dequantise into the working buffer
        with b.counted_loop("$s7", SIZE * SIZE):
            b.ins("lw $t0, 0($t8)", "addiu $t8, $t8, 4")
            b.ins("sra $t1, $t0, 31",
                  "xor $t2, $t0, $t1",
                  "subu $t2, $t2, $t1",            # abs(q)
                  f"sll $t2, $t2, {QS}",
                  f"addiu $t2, $t2, {QT + 2}",
                  "subu $t3, $zero, $t0",
                  "or $t3, $t3, $t0",
                  "sra $t3, $t3, 31",              # 0 if q==0 else -1
                  "and $t2, $t2, $t3",
                  "xor $t2, $t2, $t1",
                  "subu $t2, $t2, $t1")            # restore sign
            b.ins("sw $t2, 0($t9)", "addiu $t9, $t9, 4")
        level = SIZE >> (LEVELS - 1)
        for _ in range(LEVELS):
            _emit_2d_pass(b, level, inverse=True)
            level *= 2
        # saturate to pixels
        b.ins("move $t8, $s1")
        with b.counted_loop("$s7", SIZE * SIZE):
            b.ins("lw $t0, 0($t8)", "addiu $t8, $t8, 4")
            emit_clamp255(b, "$t0", "$t0", "$t1", "$t2", "$t3")
            b.ins("sw $t0, 0($s4)", "addiu $s4, $s4, 4", "addu $v1, $v1, $t0")
        # display-chain smoothing metric over this tile's output pixels
        b.ins(f"addiu $t8, $s4, {-(SIZE * SIZE * 4)}")
        with b.counted_loop("$s7", SIZE * SIZE - 1):
            b.ins("lw $t0, 0($t8)",
                  "lw $t1, 4($t8)",
                  "addu $t2, $t0, $t1",
                  "addiu $t2, $t2, 1",
                  "sra $t2, $t2, 1",
                  "addu $gp, $gp, $t2",
                  "addiu $t8, $t8, 4")
        b.ins(f"addiu $s3, $s3, {SIZE * SIZE * 4}")
    b.ins("la $t0, out_smooth", "sw $gp, 0($t0)")
    b.ins("la $t0, out_sum", "sw $v1, 0($t0)", "move $v0, $v1", "halt")

    return Workload(
        name="unepic",
        program=b.build(),
        expected=expected,
        description="EPIC decoder: dequantisation + inverse pyramid + "
        "saturation",
        scale=scale,
    )
