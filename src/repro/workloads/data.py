"""Deterministic synthetic input data.

MediaBench ships real speech/image/video inputs; we generate stand-ins
with the same coarse statistics (bounded dynamic range, local smoothness)
from a seeded linear congruential generator, so every run of every
workload is bit-reproducible without data files.
"""

from __future__ import annotations


class LCG:
    """Numerical Recipes LCG — small, deterministic, dependency-free."""

    def __init__(self, seed: int) -> None:
        self.state = seed & 0xFFFF_FFFF

    def next_u32(self) -> int:
        self.state = (1664525 * self.state + 1013904223) & 0xFFFF_FFFF
        return self.state

    def next_range(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        span = hi - lo + 1
        return lo + self.next_u32() % span


def speech_samples(n: int, seed: int = 0x5EED) -> list[int]:
    """Smooth, zero-mean "speech-like" samples in [-127, 127].

    A decaying random-walk keeps neighbouring samples correlated, which
    matters for the prediction-based kernels (GSM, ADPCM): residuals must
    be small relative to the signal, as with real speech.
    """
    rng = LCG(seed)
    out: list[int] = []
    value = 0
    for _ in range(n):
        value += rng.next_range(-24, 24)
        value -= value >> 3  # pull toward zero
        value = max(-127, min(127, value))
        out.append(value)
    return out


def image_tile(width: int, height: int, seed: int = 0x1316) -> list[int]:
    """A smooth 8-bit "image" tile (row-major), values in [0, 255]."""
    rng = LCG(seed)
    rows: list[list[int]] = []
    prev_row = [128] * width
    for _y in range(height):
        row: list[int] = []
        left = prev_row[0] + rng.next_range(-9, 9)
        for x in range(width):
            above = prev_row[x]
            pred = (left + above + 1) >> 1
            pixel = max(0, min(255, pred + rng.next_range(-12, 12)))
            row.append(pixel)
            left = pixel
        rows.append(row)
        prev_row = row
    return [pixel for row in rows for pixel in row]


def block8x8(seed: int = 7) -> list[int]:
    """One smooth 8x8 block (row-major, 0..255)."""
    return image_tile(8, 8, seed)
