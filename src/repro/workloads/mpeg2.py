"""MPEG-2 codec kernels (mpeg2_encode / mpeg2_decode).

The encoder implements the block pipeline MediaBench's mpeg2enc spends
its time in: an 8x8 separable butterfly transform (Walsh-Hadamard — the
add/subtract skeleton of the fast DCT), per-quadrant coefficient scaling
via shift-add constant multiplies, dead-zone quantisation, and a motion
search computing SADs over candidate displacements. The decoder mirrors
it: inverse quantisation, inverse scaling, inverse transform, and
motion-compensated reconstruction with half-pel averaging and saturation.

The per-quadrant constants intentionally differ (3/4, 5/8, 7/8): each
produces a structurally distinct dependent chain, which is what gives
mpeg2 its large population of distinct extended instructions (§4.1: up to
43 per application).
"""

from __future__ import annotations

from repro.asm.builder import AsmBuilder
from repro.workloads.base import Workload
from repro.workloads.data import image_tile
from repro.workloads.idioms import emit_clamp255, emit_mulc, py_clamp255

N = 8                       # block edge
QUAD_MULS = {               # (row>=4, col>=4) -> (multiplier, shift)
    (False, False): None,
    (False, True): (3, 2),
    (True, False): (5, 3),
    (True, True): (7, 3),
}
DEC_MULS = {                # decoder-side inverse scaling
    (False, False): None,
    (False, True): (5, 2),
    (True, False): (13, 3),
    (True, True): (9, 3),
}
QBIAS, QSHIFT = 8, 4        # quantiser: sign(c) * ((abs(c)+8) >> 4)
REF_W = 12                  # reference search area edge
CANDIDATES = ((0, 0), (0, 2), (2, 0), (2, 2))


# ----------------------------------------------------------------------
# references


def wht8(vec: list[int]) -> list[int]:
    out = list(vec)
    dist = 1
    while dist < N:
        for base in range(0, N, 2 * dist):
            for i in range(base, base + dist):
                a, c = out[i], out[i + dist]
                out[i], out[i + dist] = a + c, a - c
        dist *= 2
    return out


def wht2d(block: list[int]) -> list[int]:
    out = list(block)
    for y in range(N):
        out[y * N : (y + 1) * N] = wht8(out[y * N : (y + 1) * N])
    for x in range(N):
        col = wht8([out[y * N + x] for y in range(N)])
        for y in range(N):
            out[y * N + x] = col[y]
    return out


def _scaled(block: list[int], muls) -> list[int]:
    out = list(block)
    for y in range(N):
        for x in range(N):
            rule = muls[(y >= 4, x >= 4)]
            if rule is not None:
                m, s = rule
                out[y * N + x] = (out[y * N + x] * m) >> s
    return out


def quantise(c: int) -> int:
    m = (abs(c) + QBIAS) >> QSHIFT
    return -m if c < 0 else m


def dequantise(q: int) -> int:
    m = (abs(q) << QSHIFT) + QBIAS
    return -m if q < 0 else m


def sad(cur: list[int], ref: list[int], dx: int, dy: int) -> int:
    total = 0
    for y in range(N):
        for x in range(N):
            total += abs(cur[y * N + x] - ref[(y + dy) * REF_W + (x + dx)])
    return total


def encode_block(cur: list[int], ref: list[int]) -> tuple[list[int], int, int]:
    """Returns (quantised coefficients, best candidate index, best SAD)."""
    best_idx, best_sad = 0, None
    for idx, (dx, dy) in enumerate(CANDIDATES):
        s = sad(cur, ref, dx, dy)
        if best_sad is None or s < best_sad:
            best_sad, best_idx = s, idx
    coeffs = _scaled(wht2d(cur), QUAD_MULS)
    qs = [quantise(c) for c in coeffs]
    return qs, best_idx, best_sad


def decode_block(qs: list[int], ref: list[int], cand_idx: int) -> list[int]:
    dx, dy = CANDIDATES[cand_idx]
    dq = _scaled([dequantise(q) for q in qs], DEC_MULS)
    spatial = wht2d(dq)
    out = []
    activity = 0
    for y in range(N):
        for x in range(N):
            p0 = ref[(y + dy) * REF_W + (x + dx)]
            p1 = ref[(y + dy) * REF_W + (x + dx + 1)]
            pred = (p0 + p1 + 1) >> 1
            res = (spatial[y * N + x] + 32) >> 6
            activity += abs(res)     # block-activity metric (extra chain)
            out.append(py_clamp255(pred + res - 128))
    return out, activity


def encode_reference(blocks, refs) -> dict[str, list[int]]:
    out_q: list[int] = []
    out_mv: list[int] = []
    checksum = 0
    for cur, ref in zip(blocks, refs):
        qs, idx, best = encode_block(cur, ref)
        out_q.extend(qs)
        out_mv.append(idx)
        # per-coefficient signatures (extra distinct chains in the loop)
        sig = sum(((q << 1) ^ q) >> 1 for q in qs)
        sig2 = sum((5 * q) >> 2 for q in qs)
        checksum += sum(qs) + idx + best + sig + sig2
    return {"out_q": out_q, "out_mv": out_mv, "out_sum": [checksum]}


def decode_reference(all_qs, refs, mvs) -> dict[str, list[int]]:
    out_pix: list[int] = []
    checksum = 0
    total_activity = 0
    for i, ref in enumerate(refs):
        qs = all_qs[i * N * N : (i + 1) * N * N]
        pix, activity = decode_block(qs, ref, mvs[i])
        out_pix.extend(pix)
        checksum += sum(pix)
        total_activity += activity
    return {
        "out_pix": out_pix,
        "out_sum": [checksum],
        "out_act": [total_activity],
    }


# ----------------------------------------------------------------------
# assembly emitters

_ROW_REGS = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7"]


def _emit_wht8_regs(b: AsmBuilder) -> None:
    """Butterfly network over the 8 values held in $t0..$t7 ($a0 scratch)."""
    dist = 1
    while dist < N:
        for base in range(0, N, 2 * dist):
            for i in range(base, base + dist):
                ra, rc = _ROW_REGS[i], _ROW_REGS[i + dist]
                b.ins(
                    f"move $a0, {ra}",
                    f"addu {ra}, $a0, {rc}",
                    f"subu {rc}, $a0, {rc}",
                )
        dist *= 2


def _emit_wht2d(b: AsmBuilder, base_reg: str) -> None:
    """In-place 2D WHT of the 8x8 block at ``base_reg``.

    Clobbers $s5/$s6/$s7/$a0 and $t0-$t7; the base register is latched in
    $s5 first because the butterfly network scratches $a0.
    """
    b.ins(f"move $s5, {base_reg}")
    for which in ("rows", "cols"):
        step = N * 4 if which == "rows" else 4
        stride = 4 if which == "rows" else N * 4
        b.ins("move $s6, $s5")
        with b.counted_loop("$s7", N):
            for i, reg in enumerate(_ROW_REGS):
                b.ins(f"lw {reg}, {i * stride}($s6)")
            _emit_wht8_regs(b)
            for i, reg in enumerate(_ROW_REGS):
                b.ins(f"sw {reg}, {i * stride}($s6)")
            b.ins(f"addiu $s6, $s6, {step}")


def _emit_quadrant_scale(b: AsmBuilder, base_reg: str, muls) -> None:
    """Apply the per-quadrant shift-add scalings in-place."""
    for (row_hi, col_hi), rule in muls.items():
        if rule is None:
            continue
        mul, shift = rule
        row0 = 4 if row_hi else 0
        col0 = 4 if col_hi else 0
        b.ins(f"addiu $s6, {base_reg}, {(row0 * N + col0) * 4}")
        with b.counted_loop("$s7", 4):          # four rows of the quadrant
            b.ins("move $t8, $s6")
            with b.counted_loop("$a3", 4):      # four coefficients per row
                b.ins("lw $t0, 0($t8)")
                emit_mulc(b, "$t0", "$t0", mul, "$t1", "$t2")
                b.ins(f"sra $t0, $t0, {shift}", "sw $t0, 0($t8)")
                b.ins("addiu $t8, $t8, 4")
            b.ins(f"addiu $s6, $s6, {N * 4}")


def build_mpeg2_encode(scale: int = 1) -> Workload:
    """MPEG-2 encoder over 6*scale blocks."""
    n_blocks = 6 * scale
    blocks = [image_tile(N, N, seed=0x9E6 + i) for i in range(n_blocks)]
    refs = [image_tile(REF_W, REF_W, seed=0x8E4 + i) for i in range(n_blocks)]
    expected = encode_reference(blocks, refs)

    b = AsmBuilder("mpeg2_encode")
    b.word("in_cur", [p for blk in blocks for p in blk])
    b.word("in_ref", [p for r in refs for p in r])
    b.space("buf_blk", N * N * 4)
    b.space("out_q", N * N * n_blocks * 4)
    b.space("out_mv", n_blocks * 4)
    b.space("out_sum", 4)

    b.label("main")
    b.ins("la $s1, in_cur", "la $s2, in_ref", "la $s3, out_q", "la $s4, out_mv")
    b.ins("li $v1, 0")
    with b.counted_loop("$s0", n_blocks):
        # ---- motion search over the candidate displacements ----
        b.ins("lui $a1, 0x7fff", "ori $a1, $a1, 0xffff")   # best SAD
        b.ins("li $a2, 0")                                 # best index
        for idx, (dx, dy) in enumerate(CANDIDATES):
            b.ins("li $t9, 0")                             # SAD accumulator
            b.ins("move $t8, $s1", f"addiu $s6, $s2, {(dy * REF_W + dx) * 4}")
            with b.counted_loop("$s7", N):
                for x in range(N):
                    b.ins(
                        f"lw $t0, {x * 4}($t8)",
                        f"lw $t1, {x * 4}($s6)",
                        "subu $t2, $t0, $t1",
                        "sra $t3, $t2, 31",
                        "xor $t2, $t2, $t3",
                        "subu $t2, $t2, $t3",
                        "addu $t9, $t9, $t2",
                    )
                b.ins(f"addiu $t8, $t8, {N * 4}",
                      f"addiu $s6, $s6, {REF_W * 4}")
            keep = b.fresh("mv")
            b.ins("slt $t0, $t9, $a1", f"beq $t0, $zero, {keep}")
            b.ins("move $a1, $t9", f"li $a2, {idx}")
            b.label(keep)
        b.ins("sw $a2, 0($s4)", "addiu $s4, $s4, 4")
        b.ins("addu $v1, $v1, $a2", "addu $v1, $v1, $a1")
        # ---- transform ----
        b.ins("la $t8, buf_blk", "move $t9, $s1")
        with b.counted_loop("$s7", N * N):
            b.ins("lw $t0, 0($t9)", "sw $t0, 0($t8)",
                  "addiu $t8, $t8, 4", "addiu $t9, $t9, 4")
        b.ins("la $a0, buf_blk")
        _emit_wht2d(b, "$a0")
        b.ins("la $a0, buf_blk")
        _emit_quadrant_scale(b, "$a0", QUAD_MULS)
        # ---- quantisation ----
        b.ins("la $t9, buf_blk")
        with b.counted_loop("$s7", N * N):
            b.ins("lw $t0, 0($t9)", "addiu $t9, $t9, 4")
            b.ins("sra $t1, $t0, 31",
                  "xor $t2, $t0, $t1",
                  "subu $t2, $t2, $t1",
                  f"addiu $t2, $t2, {QBIAS}",
                  f"sra $t2, $t2, {QSHIFT}",
                  "xor $t2, $t2, $t1",
                  "subu $t2, $t2, $t1")
            b.ins("sw $t2, 0($s3)", "addiu $s3, $s3, 4", "addu $v1, $v1, $t2")
            b.ins("sll $t4, $t2, 1",      # gray-code signature chain
                  "xor $t4, $t4, $t2",
                  "sra $t4, $t4, 1",
                  "addu $v1, $v1, $t4")
            b.ins("sll $t5, $t2, 2",      # 5q/4 rate-estimate chain
                  "addu $t5, $t5, $t2",
                  "sra $t5, $t5, 2",
                  "addu $v1, $v1, $t5")
        b.ins(f"addiu $s1, $s1, {N * N * 4}",
              f"addiu $s2, $s2, {REF_W * REF_W * 4}")
    b.ins("la $t0, out_sum", "sw $v1, 0($t0)", "move $v0, $v1", "halt")

    return Workload(
        name="mpeg2_encode",
        program=b.build(),
        expected=expected,
        description="MPEG-2 encoder: motion search (SAD), 8x8 butterfly "
        "transform, quadrant scaling, quantisation",
        scale=scale,
    )


def build_mpeg2_decode(scale: int = 1) -> Workload:
    """MPEG-2 decoder over 8*scale blocks."""
    n_blocks = 8 * scale
    blocks = [image_tile(N, N, seed=0xDE6 + i) for i in range(n_blocks)]
    refs = [image_tile(REF_W, REF_W, seed=0xDF4 + i) for i in range(n_blocks)]
    enc = encode_reference(blocks, refs)
    qs, mvs = enc["out_q"], enc["out_mv"]
    expected = decode_reference(qs, refs, mvs)

    b = AsmBuilder("mpeg2_decode")
    b.word("in_q", qs)
    b.word("in_ref", [p for r in refs for p in r])
    b.word("in_mv", mvs)
    b.word("cand_off", [(dy * REF_W + dx) * 4 for dx, dy in CANDIDATES])
    b.space("buf_blk", N * N * 4)
    b.space("out_pix", N * N * n_blocks * 4)
    b.space("out_sum", 4)
    b.space("out_act", 4)

    b.label("main")
    b.ins("la $s1, in_q", "la $s2, in_ref", "la $s3, out_pix", "la $s4, in_mv")
    b.ins("li $v1, 0", "li $fp, 0")
    with b.counted_loop("$s0", n_blocks):
        # ---- dequantise into working buffer ----
        b.ins("la $t8, buf_blk")
        with b.counted_loop("$s7", N * N):
            b.ins("lw $t0, 0($s1)", "addiu $s1, $s1, 4")
            b.ins("sra $t1, $t0, 31",
                  "xor $t2, $t0, $t1",
                  "subu $t2, $t2, $t1",
                  f"sll $t2, $t2, {QSHIFT}",
                  f"addiu $t2, $t2, {QBIAS}",
                  "xor $t2, $t2, $t1",
                  "subu $t2, $t2, $t1")
            b.ins("sw $t2, 0($t8)", "addiu $t8, $t8, 4")
        b.ins("la $a0, buf_blk")
        _emit_quadrant_scale(b, "$a0", DEC_MULS)
        b.ins("la $a0, buf_blk")
        _emit_wht2d(b, "$a0")
        # ---- motion compensation + reconstruction ----
        b.ins("lw $t0, 0($s4)", "addiu $s4, $s4, 4")        # candidate index
        b.ins("sll $t0, $t0, 2", "la $t1, cand_off", "addu $t1, $t1, $t0",
              "lw $a1, 0($t1)")                             # byte offset
        b.ins("addu $a1, $s2, $a1")                         # pred base
        b.ins("la $t8, buf_blk")
        with b.counted_loop("$s7", N):
            # rolled pixel loop: several distinct dependent chains per
            # iteration (average, residual scaling, saturation) — the
            # interleaving that makes greedy selection thrash small PFU
            # banks (§4.1)
            with b.counted_loop("$a2", N):
                b.ins(
                    "lw $t0, 0($a1)",
                    "lw $t1, 4($a1)",
                    "addu $t2, $t0, $t1",
                    "addiu $t2, $t2, 1",
                    "sra $t2, $t2, 1",                      # half-pel average
                    "lw $t3, 0($t8)",
                    "addiu $t3, $t3, 32",
                    "sra $t3, $t3, 6",
                    "addu $t2, $t2, $t3",
                    "addiu $t2, $t2, -128",
                )
                b.ins("sra $t0, $t3, 31",     # block-activity chain
                      "xor $t1, $t3, $t0",
                      "subu $t1, $t1, $t0",
                      "addu $fp, $fp, $t1")
                emit_clamp255(b, "$t2", "$t2", "$t4", "$t5", "$t6")
                b.ins("sw $t2, 0($s3)", "addu $v1, $v1, $t2")
                b.ins("addiu $a1, $a1, 4", "addiu $t8, $t8, 4",
                      "addiu $s3, $s3, 4")
            b.ins(f"addiu $a1, $a1, {(REF_W - N) * 4}")
        b.ins(f"addiu $s2, $s2, {REF_W * REF_W * 4}")
    b.ins("la $t0, out_act", "sw $fp, 0($t0)")
    b.ins("la $t0, out_sum", "sw $v1, 0($t0)", "move $v0, $v1", "halt")

    return Workload(
        name="mpeg2_decode",
        program=b.build(),
        expected=expected,
        description="MPEG-2 decoder: dequantisation, inverse transform, "
        "half-pel motion compensation, saturation",
        scale=scale,
    )
