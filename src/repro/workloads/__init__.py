"""Synthetic MediaBench-like workloads.

The paper evaluates on eight MediaBench applications compiled to
SimpleScalar PISA. We cannot ship those binaries, so each application is
replaced by a hand-written kernel in the T1000 ISA implementing the same
algorithmic core the original spends its time in (see DESIGN.md §2):

==============  ========================================================
name            algorithmic core
==============  ========================================================
epic            wavelet pyramid decomposition + dead-zone quantisation
unepic          inverse quantisation + pyramid reconstruction
gsm_encode      preemphasis, LTP lag search (SAD), residual quantisation
gsm_decode      LTP reconstruction, synthesis filter, de-emphasis
g721_encode     ADPCM: predictor, adaptive quantiser (control-heavy)
g721_decode     ADPCM inverse quantiser + predictor update
mpeg2_encode    8x8 shift-add DCT, quantisation, motion-search SAD
mpeg2_decode    dequant, shift-add IDCT, saturating reconstruction
==============  ========================================================

Every workload carries a pure-Python reference implementation; the test
suite checks the assembly kernels bit-exactly against it.
"""

from repro.workloads.base import Workload, check_outputs
from repro.workloads.registry import WORKLOAD_NAMES, build_workload

__all__ = ["Workload", "check_outputs", "build_workload", "WORKLOAD_NAMES"]
