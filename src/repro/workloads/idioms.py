"""Branchless fixed-point idioms shared by the workload kernels.

Each idiom comes as a pair: an assembly emitter and the bit-exact Python
reference. These are precisely the "data-dependent sequences of narrow
ALU operations" the paper's extractor targets — absolute values,
saturating clamps, and multiply-by-constant via shift-add decomposition
are the staple dependent chains of fixed-point media code.

The Python references use plain ints; all intermediate values stay well
inside 32 bits, where Python's arithmetic-shift and two's-complement
bitwise semantics coincide with the simulator's.
"""

from __future__ import annotations

from repro.asm.builder import AsmBuilder


# ----------------------------------------------------------------------
# absolute value: 3-op chain, 1 input


def emit_abs(b: AsmBuilder, dst: str, src: str, t1: str) -> None:
    """dst = abs(src) via the classic sra/xor/subu chain."""
    b.ins(
        f"sra {t1}, {src}, 31",
        f"xor {dst}, {src}, {t1}",
        f"subu {dst}, {dst}, {t1}",
    )


def py_abs(x: int) -> int:
    return abs(x)


# ----------------------------------------------------------------------
# clamp to [0, 255]: 9-op chain, 1 input


def emit_clamp255(
    b: AsmBuilder, dst: str, src: str, t1: str, t2: str, t3: str
) -> None:
    """dst = min(255, max(0, src)) without branches."""
    b.ins(
        f"sra {t1}, {src}, 31",      # -1 if negative else 0
        f"nor {t2}, {t1}, $zero",    # 0 if negative else -1
        f"and {t3}, {src}, {t2}",    # max(0, src)
        f"slti {t1}, {t3}, 256",     # 1 if below 256
        f"subu {t2}, $zero, {t1}",   # -1 if keep else 0
        f"and {t1}, {t3}, {t2}",     # value if keep else 0
        f"nor {t2}, {t2}, $zero",    # 0 if keep else -1
        f"andi {t2}, {t2}, 255",     # 0 if keep else 255
        f"or {dst}, {t1}, {t2}",
    )


def py_clamp255(x: int) -> int:
    return 0 if x < 0 else (x if x < 256 else 255)


# ----------------------------------------------------------------------
# clamp to [0, hi] where hi = 2**k - 1 (same shape, parametric bound)


def emit_clamp_pow2(
    b: AsmBuilder, dst: str, src: str, hi: int, t1: str, t2: str, t3: str
) -> None:
    """dst = min(hi, max(0, src)); ``hi`` must be 2**k - 1 and < 2**15."""
    assert hi & (hi + 1) == 0 and 0 < hi < (1 << 15)
    b.ins(
        f"sra {t1}, {src}, 31",
        f"nor {t2}, {t1}, $zero",
        f"and {t3}, {src}, {t2}",
        f"slti {t1}, {t3}, {hi + 1}",
        f"subu {t2}, $zero, {t1}",
        f"and {t1}, {t3}, {t2}",
        f"nor {t2}, {t2}, $zero",
        f"andi {t2}, {t2}, {hi}",
        f"or {dst}, {t1}, {t2}",
    )


def py_clamp_pow2(x: int, hi: int) -> int:
    return 0 if x < 0 else (x if x <= hi else hi)


# ----------------------------------------------------------------------
# multiply by a constant via shift-add decomposition


def shift_add_terms(const: int) -> list[int]:
    """Bit positions of ``const`` (must be positive)."""
    assert const > 0
    return [k for k in range(const.bit_length()) if const & (1 << k)]


def emit_mulc(
    b: AsmBuilder, dst: str, src: str, const: int, t1: str, t2: str
) -> None:
    """dst = src * const, decomposed into shifts and adds (exact).

    Uses ``t1`` as the accumulator and ``t2`` for shifted terms; ``dst``
    may alias ``t1``. Chains grow with the constant's popcount, giving the
    extractor the long dependent sequences real fixed-point MACs have.
    """
    terms = shift_add_terms(const)
    first = terms[0]
    if first == 0:
        b.ins(f"addu {t1}, {src}, $zero")
    else:
        b.ins(f"sll {t1}, {src}, {first}")
    for k in terms[1:]:
        b.ins(f"sll {t2}, {src}, {k}", f"addu {t1}, {t1}, {t2}")
    if dst != t1:
        b.ins(f"addu {dst}, {t1}, $zero")


def py_mulc(x: int, const: int) -> int:
    return x * const


# ----------------------------------------------------------------------
# rounding average: (a + b + 1) >> 1 — 3-op, 2 inputs


def emit_avg(b: AsmBuilder, dst: str, a: str, c: str) -> None:
    b.ins(
        f"addu {dst}, {a}, {c}",
        f"addiu {dst}, {dst}, 1",
        f"sra {dst}, {dst}, 1",
    )


def py_avg(a: int, b: int) -> int:
    return (a + b + 1) >> 1
