"""Workload container and verification helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.program import Program
from repro.sim.functional import ExecutionResult
from repro.utils.bitops import to_s32


@dataclass
class Workload:
    """A benchmark program plus its expected observable outputs.

    ``expected`` maps data-segment symbols to the signed word values the
    program must leave there; verification reads the simulator memory at
    those symbols.
    """

    name: str
    program: Program
    expected: dict[str, list[int]] = field(default_factory=dict)
    description: str = ""
    scale: int = 1

    def output_words(self, result: ExecutionResult, symbol: str) -> list[int]:
        """Signed words the program left at ``symbol``."""
        addr = self.program.symbols[symbol]
        count = len(self.expected[symbol])
        return [to_s32(w) for w in result.memory.words(addr, count)]

    def verify(self, result: ExecutionResult) -> None:
        """Raise AssertionError (with context) on any output mismatch."""
        for symbol, want in self.expected.items():
            got = self.output_words(result, symbol)
            if got != want:
                diffs = [
                    (i, a, b) for i, (a, b) in enumerate(zip(got, want)) if a != b
                ]
                raise AssertionError(
                    f"{self.name}: output {symbol!r} mismatch at "
                    f"{len(diffs)}/{len(want)} words; first diffs: {diffs[:5]}"
                )


def check_outputs(workload: Workload, result: ExecutionResult) -> bool:
    """Boolean form of :meth:`Workload.verify`."""
    try:
        workload.verify(result)
        return True
    except AssertionError:
        return False
