"""Workload registry: the paper's eight MediaBench applications."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

_BUILDERS: dict[str, Callable[[int], Workload]] = {}


def _register(name: str):
    def deco(fn: Callable[[int], Workload]):
        _BUILDERS[name] = fn
        return fn

    return deco


def _load_builders() -> None:
    # Imported lazily to keep module import costs low and avoid cycles.
    from repro.workloads import epic, g721, gsm, mpeg2

    _BUILDERS.update(
        {
            "unepic": epic.build_unepic,
            "epic": epic.build_epic,
            "gsm_decode": gsm.build_gsm_decode,
            "gsm_encode": gsm.build_gsm_encode,
            "g721_decode": g721.build_g721_decode,
            "g721_encode": g721.build_g721_encode,
            "mpeg2_decode": mpeg2.build_mpeg2_decode,
            "mpeg2_encode": mpeg2.build_mpeg2_encode,
        }
    )


#: Paper order (Figure 2/6 x-axis).
WORKLOAD_NAMES = (
    "unepic",
    "epic",
    "gsm_decode",
    "gsm_encode",
    "g721_decode",
    "g721_encode",
    "mpeg2_decode",
    "mpeg2_encode",
)


def build_workload(name: str, scale: int = 1) -> Workload:
    """Build one of the eight benchmark workloads by name."""
    if not _BUILDERS:
        _load_builders()
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOAD_NAMES)}"
        ) from None
    return builder(scale)


def build_all(scale: int = 1) -> dict[str, Workload]:
    """All eight workloads (paper order)."""
    return {name: build_workload(name, scale) for name in WORKLOAD_NAMES}
