"""The 32-entry integer register file and its conventional names.

Register 0 (``$zero``) is hard-wired to zero: writes to it are discarded,
as on MIPS. The assembler accepts both numeric (``$5``) and symbolic
(``$a1``) spellings.
"""

from __future__ import annotations

from repro.errors import AssemblerError

NUM_REGS = 32

#: Conventional MIPS register names, indexed by register number.
REG_NAMES: tuple[str, ...] = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

_NAME_TO_NUM: dict[str, int] = {name: i for i, name in enumerate(REG_NAMES)}

# Register-number aliases: $0..$31 and $r0..$r31.
for _i in range(NUM_REGS):
    _NAME_TO_NUM[str(_i)] = _i
    _NAME_TO_NUM[f"r{_i}"] = _i


def reg_name(num: int) -> str:
    """Symbolic name (``$``-less) for register number ``num``."""
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return REG_NAMES[num]


def reg_num(name: str) -> int:
    """Parse a register reference (``$t0``, ``t0``, ``$8``, ``8``) to a number."""
    text = name.strip().lower()
    if text.startswith("$"):
        text = text[1:]
    try:
        return _NAME_TO_NUM[text]
    except KeyError:
        raise AssemblerError(f"unknown register {name!r}") from None
