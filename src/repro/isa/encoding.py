"""Binary (32-bit) instruction encoding and decoding.

The encoding is MIPS-I-shaped: R-type instructions share primary opcode 0
and are distinguished by a 6-bit function code; I-type instructions carry a
16-bit immediate; jumps carry a 26-bit word target. The ``ext`` instruction
(paper §2.2) uses primary opcode 0x3E with the register triple in the usual
R-type slots and an 11-bit ``Conf`` field naming the PFU configuration —
"a MIPS-like encoding format with an additional Conf field".

Branch offsets are encoded relative to the *next* instruction in words, as
on MIPS. Encoding a program therefore needs resolved label addresses; use
:func:`encode_program` / :func:`decode_program` for whole programs, or pass
explicit numeric targets to :func:`encode`.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, Opcode, opcode_info

#: Base address of the text segment (matches SimpleScalar convention).
TEXT_BASE = 0x0040_0000

_R_FUNCT: dict[Opcode, int] = {
    Opcode.SLL: 0x00,
    Opcode.SRL: 0x02,
    Opcode.SRA: 0x03,
    Opcode.SLLV: 0x04,
    Opcode.SRLV: 0x06,
    Opcode.SRAV: 0x07,
    Opcode.JR: 0x08,
    Opcode.JALR: 0x09,
    Opcode.HALT: 0x0C,
    Opcode.MUL: 0x18,
    Opcode.DIV: 0x1A,
    Opcode.REM: 0x1B,
    Opcode.ADD: 0x20,
    Opcode.ADDU: 0x21,
    Opcode.SUB: 0x22,
    Opcode.SUBU: 0x23,
    Opcode.AND: 0x24,
    Opcode.OR: 0x25,
    Opcode.XOR: 0x26,
    Opcode.NOR: 0x27,
    Opcode.SLT: 0x2A,
    Opcode.SLTU: 0x2B,
}
_FUNCT_R: dict[int, Opcode] = {v: k for k, v in _R_FUNCT.items()}

_I_PRIMARY: dict[Opcode, int] = {
    Opcode.BEQ: 0x04,
    Opcode.BNE: 0x05,
    Opcode.BLEZ: 0x06,
    Opcode.BGTZ: 0x07,
    Opcode.ADDI: 0x08,
    Opcode.ADDIU: 0x09,
    Opcode.SLTI: 0x0A,
    Opcode.SLTIU: 0x0B,
    Opcode.ANDI: 0x0C,
    Opcode.ORI: 0x0D,
    Opcode.XORI: 0x0E,
    Opcode.LUI: 0x0F,
    Opcode.LB: 0x20,
    Opcode.LH: 0x21,
    Opcode.LW: 0x23,
    Opcode.LBU: 0x24,
    Opcode.LHU: 0x25,
    Opcode.SB: 0x28,
    Opcode.SH: 0x29,
    Opcode.SW: 0x2B,
}
_PRIMARY_I: dict[int, Opcode] = {v: k for k, v in _I_PRIMARY.items()}

_REGIMM = 0x01          # bltz/bgez share primary 1, selected by the rt field
_J_PRIMARY = {Opcode.J: 0x02, Opcode.JAL: 0x03}
_EXT_PRIMARY = 0x3E
_CONF_BITS = 11
MAX_CONF = (1 << _CONF_BITS) - 1


def _check_imm16(value: int, signed: bool, op: Opcode) -> int:
    if signed:
        if not -(1 << 15) <= value < (1 << 15):
            raise EncodingError(f"{op}: immediate {value} out of signed 16-bit range")
        return value & 0xFFFF
    if not 0 <= value < (1 << 16):
        raise EncodingError(f"{op}: immediate {value} out of unsigned 16-bit range")
    return value


def encode(instr: Instruction, numeric_target: int | None = None) -> int:
    """Encode one instruction to its 32-bit word.

    ``numeric_target`` supplies the resolved control-flow target: for
    branches, the word offset relative to the next instruction; for jumps,
    the absolute word address (``addr >> 2``).
    """
    op = instr.op
    fmt = opcode_info(op).fmt
    rd = instr.rd or 0
    rs = instr.rs or 0
    rt = instr.rt or 0

    if fmt is Fmt.R3:
        return (rs << 21) | (rt << 16) | (rd << 11) | _R_FUNCT[op]
    if fmt is Fmt.SHIFT_IMM:
        shamt = instr.imm or 0
        if not 0 <= shamt < 32:
            raise EncodingError(f"{op}: shift amount {shamt} out of range")
        # value register goes in the rt slot, as on MIPS
        return (rs << 16) | (rd << 11) | (shamt << 6) | _R_FUNCT[op]
    if fmt is Fmt.R2_IMM:
        imm = _check_imm16(instr.imm or 0, opcode_info(op).signed_imm, op)
        return (_I_PRIMARY[op] << 26) | (rs << 21) | (rt << 16) | imm
    if fmt is Fmt.LUI:
        imm = _check_imm16(instr.imm or 0, False, op)
        return (_I_PRIMARY[op] << 26) | (rt << 16) | imm
    if fmt is Fmt.MEM:
        imm = _check_imm16(instr.imm or 0, True, op)
        return (_I_PRIMARY[op] << 26) | (rs << 21) | (rt << 16) | imm
    if fmt in (Fmt.BR2, Fmt.BR1):
        if numeric_target is None:
            raise EncodingError(f"{op}: cannot encode symbolic target {instr.target!r}")
        off = _check_imm16(numeric_target, True, op)
        if op is Opcode.BLTZ:
            return (_REGIMM << 26) | (rs << 21) | (0 << 16) | off
        if op is Opcode.BGEZ:
            return (_REGIMM << 26) | (rs << 21) | (1 << 16) | off
        return (_I_PRIMARY[op] << 26) | (rs << 21) | (rt << 16) | off
    if fmt is Fmt.J:
        if numeric_target is None:
            raise EncodingError(f"{op}: cannot encode symbolic target {instr.target!r}")
        if not 0 <= numeric_target < (1 << 26):
            raise EncodingError(f"{op}: jump target {numeric_target} out of range")
        return (_J_PRIMARY[op] << 26) | numeric_target
    if fmt is Fmt.JR:
        return (rs << 21) | _R_FUNCT[op]
    if fmt is Fmt.JALR:
        return (rs << 21) | (rd << 11) | _R_FUNCT[op]
    if fmt is Fmt.EXT:
        conf = instr.conf or 0
        if not 0 <= conf <= MAX_CONF:
            raise EncodingError(f"ext: conf id {conf} exceeds {_CONF_BITS}-bit field")
        return (_EXT_PRIMARY << 26) | (rs << 21) | (rt << 16) | (rd << 11) | conf
    if op is Opcode.NOP:
        return 0
    if op is Opcode.HALT:
        return _R_FUNCT[Opcode.HALT]
    raise EncodingError(f"cannot encode {op}")  # pragma: no cover


def decode(word: int) -> tuple[Instruction, int | None]:
    """Decode a 32-bit word.

    Returns ``(instruction, numeric_target)`` where ``numeric_target``
    mirrors the argument to :func:`encode` (``None`` for non-control ops).
    Decoded instructions have symbolic ``target=None``.
    """
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"word out of 32-bit range: {word:#x}")
    primary = (word >> 26) & 0x3F
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm16 = word & 0xFFFF
    simm16 = imm16 - 0x10000 if imm16 & 0x8000 else imm16

    if primary == 0:
        if word == 0:
            return Instruction(Opcode.NOP), None
        op = _FUNCT_R.get(funct)
        if op is None:
            raise EncodingError(f"unknown R-type funct {funct:#x}")
        if op in (Opcode.SLL, Opcode.SRL, Opcode.SRA):
            return Instruction(op, rd=rd, rs=rt, imm=shamt), None
        if op is Opcode.JR:
            return Instruction(op, rs=rs), None
        if op is Opcode.JALR:
            return Instruction(op, rd=rd, rs=rs), None
        if op is Opcode.HALT:
            return Instruction(op), None
        return Instruction(op, rd=rd, rs=rs, rt=rt), None
    if primary == _REGIMM:
        op = Opcode.BGEZ if rt == 1 else Opcode.BLTZ
        return Instruction(op, rs=rs), simm16
    if primary in (_J_PRIMARY[Opcode.J], _J_PRIMARY[Opcode.JAL]):
        op = Opcode.J if primary == _J_PRIMARY[Opcode.J] else Opcode.JAL
        return Instruction(op), word & 0x03FF_FFFF
    if primary == _EXT_PRIMARY:
        return Instruction(Opcode.EXT, rd=rd, rs=rs, rt=rt, conf=word & MAX_CONF), None

    op = _PRIMARY_I.get(primary)
    if op is None:
        raise EncodingError(f"unknown primary opcode {primary:#x}")
    fmt = opcode_info(op).fmt
    if fmt is Fmt.BR2:
        return Instruction(op, rs=rs, rt=rt), simm16
    if fmt is Fmt.BR1:
        return Instruction(op, rs=rs), simm16
    if fmt is Fmt.LUI:
        return Instruction(op, rt=rt, imm=imm16), None
    if fmt is Fmt.MEM:
        return Instruction(op, rt=rt, rs=rs, imm=simm16), None
    imm = simm16 if opcode_info(op).signed_imm else imm16
    return Instruction(op, rt=rt, rs=rs, imm=imm), None
