"""Pure evaluation functions for ALU-class operations.

These are shared between the functional simulator (executing ordinary
instructions) and the extended-instruction interpreter (executing the
dataflow graph a PFU configuration implements). Keeping them in one place
guarantees that rewriting a sequence into an ``ext`` instruction cannot
change program semantics: both paths call the same functions.

All functions take and return unsigned 32-bit values (Python ints in
``[0, 2**32)``). Immediates must be pre-processed by the caller (sign- or
zero-extended per :attr:`OpcodeInfo.signed_imm`) and passed as the second
operand ``b``; for immediate shifts ``b`` is the shift amount.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.opcodes import Opcode
from repro.utils.bitops import to_s32, to_u32

_EvalFn = Callable[[int, int], int]


def _add(a: int, b: int) -> int:
    return to_u32(a + b)


def _sub(a: int, b: int) -> int:
    return to_u32(a - b)


def _and(a: int, b: int) -> int:
    return a & b


def _or(a: int, b: int) -> int:
    return a | b


def _xor(a: int, b: int) -> int:
    return a ^ b


def _nor(a: int, b: int) -> int:
    return to_u32(~(a | b))


def _slt(a: int, b: int) -> int:
    return 1 if to_s32(a) < to_s32(b) else 0


def _sltu(a: int, b: int) -> int:
    return 1 if to_u32(a) < to_u32(b) else 0


def _sll(a: int, b: int) -> int:
    return to_u32(a << (b & 31))


def _srl(a: int, b: int) -> int:
    return to_u32(a) >> (b & 31)


def _sra(a: int, b: int) -> int:
    return to_u32(to_s32(a) >> (b & 31))


def _mul(a: int, b: int) -> int:
    return to_u32(to_s32(a) * to_s32(b))


def _div(a: int, b: int) -> int:
    # Division by zero yields 0 (defined, trap-free semantics).
    if to_s32(b) == 0:
        return 0
    q = abs(to_s32(a)) // abs(to_s32(b))
    if (to_s32(a) < 0) != (to_s32(b) < 0):
        q = -q
    return to_u32(q)


def _rem(a: int, b: int) -> int:
    if to_s32(b) == 0:
        return 0
    sa, sb = to_s32(a), to_s32(b)
    r = abs(sa) % abs(sb)
    return to_u32(-r if sa < 0 else r)


def _lui(_a: int, b: int) -> int:
    return to_u32((b & 0xFFFF) << 16)


_EVAL: dict[Opcode, _EvalFn] = {
    Opcode.ADD: _add,
    Opcode.ADDU: _add,
    Opcode.ADDI: _add,
    Opcode.ADDIU: _add,
    Opcode.SUB: _sub,
    Opcode.SUBU: _sub,
    Opcode.AND: _and,
    Opcode.ANDI: _and,
    Opcode.OR: _or,
    Opcode.ORI: _or,
    Opcode.XOR: _xor,
    Opcode.XORI: _xor,
    Opcode.NOR: _nor,
    Opcode.SLT: _slt,
    Opcode.SLTI: _slt,
    Opcode.SLTU: _sltu,
    Opcode.SLTIU: _sltu,
    Opcode.SLL: _sll,
    Opcode.SLLV: _sll,
    Opcode.SRL: _srl,
    Opcode.SRLV: _srl,
    Opcode.SRA: _sra,
    Opcode.SRAV: _sra,
    Opcode.MUL: _mul,
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.LUI: _lui,
}


def alu_eval(op: Opcode, a: int, b: int) -> int:
    """Evaluate ALU-class opcode ``op`` on unsigned 32-bit operands.

    Operand order is uniform across the ISA (unlike MIPS): ``a`` is the
    first source (``rs``; the value to shift, for shifts) and ``b`` is the
    second source (``rt``, the immediate, or the shift amount).
    """
    try:
        fn = _EVAL[op]
    except KeyError:
        raise ValueError(f"{op} is not an ALU-evaluable opcode") from None
    return fn(to_u32(a), to_u32(b))


def has_alu_semantics(op: Opcode) -> bool:
    """Whether ``op`` can be evaluated by :func:`alu_eval`."""
    return op in _EVAL
