"""Opcode definitions and per-opcode metadata.

Each opcode carries the static information the rest of the system needs:

- ``fmt`` — operand format, which drives the assembler parser, the
  encoder, and the :meth:`Instruction.uses`/``defs`` accessors.
- ``op_class`` — functional-unit class; the timing simulator maps a class
  to an FU pool and an execution latency.
- ``latency`` — base-machine execution latency in cycles (SimpleScalar
  ``sim-outorder`` defaults: ALU ops 1, integer multiply 3, divide 20;
  loads are 1 plus cache access time).
- ``candidate`` — whether the paper's selection algorithms may fold this
  opcode into an extended instruction. Per §4 these are "arithmetic and
  logic instructions"; loads, stores, branches, multiplies and divides
  are never folded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional-unit class of an opcode."""

    ALU = "alu"          # single-cycle integer arithmetic/logic/compare/shift
    MUL = "mul"          # integer multiply
    DIV = "div"          # integer divide / remainder
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"    # conditional branches
    JUMP = "jump"        # unconditional jumps / calls / returns
    NOP = "nop"
    HALT = "halt"
    EXT = "ext"          # PFU extended instruction


class Fmt(enum.Enum):
    """Assembly/encoding operand format."""

    R3 = "r3"            # op rd, rs, rt
    R2_IMM = "r2imm"     # op rt, rs, imm        (I-type ALU)
    SHIFT_IMM = "shimm"  # op rd, rt, shamt
    LUI = "lui"          # op rt, imm
    MEM = "mem"          # op rt, offset(rs)
    BR2 = "br2"          # op rs, rt, label
    BR1 = "br1"          # op rs, label
    J = "j"              # op label
    JR = "jr"            # op rs
    JALR = "jalr"        # op rd, rs
    NONE = "none"        # op
    EXT = "ext"          # op rd, rs, rt, conf


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata for one opcode."""

    fmt: Fmt
    op_class: OpClass
    latency: int
    candidate: bool
    signed_imm: bool = True  # I-type: sign-extend (True) or zero-extend imm16


class Opcode(enum.Enum):
    """All opcodes of the T1000 ISA."""

    # R-type arithmetic / logic / compare
    ADD = "add"
    ADDU = "addu"
    SUB = "sub"
    SUBU = "subu"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    SLLV = "sllv"
    SRLV = "srlv"
    SRAV = "srav"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # shifts with immediate shift amount
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    # I-type
    ADDI = "addi"
    ADDIU = "addiu"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLTIU = "sltiu"
    LUI = "lui"
    # memory
    LW = "lw"
    LH = "lh"
    LHU = "lhu"
    LB = "lb"
    LBU = "lbu"
    SW = "sw"
    SH = "sh"
    SB = "sb"
    # control
    BEQ = "beq"
    BNE = "bne"
    BLEZ = "blez"
    BGTZ = "bgtz"
    BLTZ = "bltz"
    BGEZ = "bgez"
    J = "j"
    JAL = "jal"
    JR = "jr"
    JALR = "jalr"
    # misc
    NOP = "nop"
    HALT = "halt"
    # PFU extended instruction (§2.2)
    EXT = "ext"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ALU = OpClass.ALU
_INFO: dict[Opcode, OpcodeInfo] = {
    Opcode.ADD: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.ADDU: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.SUB: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.SUBU: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.AND: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.OR: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.XOR: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.NOR: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.SLT: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.SLTU: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.SLLV: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.SRLV: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.SRAV: OpcodeInfo(Fmt.R3, _ALU, 1, True),
    Opcode.MUL: OpcodeInfo(Fmt.R3, OpClass.MUL, 3, False),
    Opcode.DIV: OpcodeInfo(Fmt.R3, OpClass.DIV, 20, False),
    Opcode.REM: OpcodeInfo(Fmt.R3, OpClass.DIV, 20, False),
    Opcode.SLL: OpcodeInfo(Fmt.SHIFT_IMM, _ALU, 1, True),
    Opcode.SRL: OpcodeInfo(Fmt.SHIFT_IMM, _ALU, 1, True),
    Opcode.SRA: OpcodeInfo(Fmt.SHIFT_IMM, _ALU, 1, True),
    Opcode.ADDI: OpcodeInfo(Fmt.R2_IMM, _ALU, 1, True),
    Opcode.ADDIU: OpcodeInfo(Fmt.R2_IMM, _ALU, 1, True),
    Opcode.ANDI: OpcodeInfo(Fmt.R2_IMM, _ALU, 1, True, signed_imm=False),
    Opcode.ORI: OpcodeInfo(Fmt.R2_IMM, _ALU, 1, True, signed_imm=False),
    Opcode.XORI: OpcodeInfo(Fmt.R2_IMM, _ALU, 1, True, signed_imm=False),
    Opcode.SLTI: OpcodeInfo(Fmt.R2_IMM, _ALU, 1, True),
    Opcode.SLTIU: OpcodeInfo(Fmt.R2_IMM, _ALU, 1, True),
    Opcode.LUI: OpcodeInfo(Fmt.LUI, _ALU, 1, False, signed_imm=False),
    Opcode.LW: OpcodeInfo(Fmt.MEM, OpClass.LOAD, 1, False),
    Opcode.LH: OpcodeInfo(Fmt.MEM, OpClass.LOAD, 1, False),
    Opcode.LHU: OpcodeInfo(Fmt.MEM, OpClass.LOAD, 1, False),
    Opcode.LB: OpcodeInfo(Fmt.MEM, OpClass.LOAD, 1, False),
    Opcode.LBU: OpcodeInfo(Fmt.MEM, OpClass.LOAD, 1, False),
    Opcode.SW: OpcodeInfo(Fmt.MEM, OpClass.STORE, 1, False),
    Opcode.SH: OpcodeInfo(Fmt.MEM, OpClass.STORE, 1, False),
    Opcode.SB: OpcodeInfo(Fmt.MEM, OpClass.STORE, 1, False),
    Opcode.BEQ: OpcodeInfo(Fmt.BR2, OpClass.BRANCH, 1, False),
    Opcode.BNE: OpcodeInfo(Fmt.BR2, OpClass.BRANCH, 1, False),
    Opcode.BLEZ: OpcodeInfo(Fmt.BR1, OpClass.BRANCH, 1, False),
    Opcode.BGTZ: OpcodeInfo(Fmt.BR1, OpClass.BRANCH, 1, False),
    Opcode.BLTZ: OpcodeInfo(Fmt.BR1, OpClass.BRANCH, 1, False),
    Opcode.BGEZ: OpcodeInfo(Fmt.BR1, OpClass.BRANCH, 1, False),
    Opcode.J: OpcodeInfo(Fmt.J, OpClass.JUMP, 1, False),
    Opcode.JAL: OpcodeInfo(Fmt.J, OpClass.JUMP, 1, False),
    Opcode.JR: OpcodeInfo(Fmt.JR, OpClass.JUMP, 1, False),
    Opcode.JALR: OpcodeInfo(Fmt.JALR, OpClass.JUMP, 1, False),
    Opcode.NOP: OpcodeInfo(Fmt.NONE, OpClass.NOP, 1, False),
    Opcode.HALT: OpcodeInfo(Fmt.NONE, OpClass.HALT, 1, False),
    Opcode.EXT: OpcodeInfo(Fmt.EXT, OpClass.EXT, 1, False),
}

_BY_NAME: dict[str, Opcode] = {op.value: op for op in Opcode}


def opcode_info(op: Opcode) -> OpcodeInfo:
    """Metadata for ``op``."""
    return _INFO[op]


def opcode_by_name(name: str) -> Opcode | None:
    """Look up an opcode by mnemonic; ``None`` if unknown (maybe a pseudo-op)."""
    return _BY_NAME.get(name.lower())


#: Opcodes eligible for folding into extended instructions (§4: "arithmetic
#: and logic instructions" subject to the bitwidth filter).
CANDIDATE_OPCODES: frozenset[Opcode] = frozenset(
    op for op, info in _INFO.items() if info.candidate
)
