"""The :class:`Instruction` record.

One Instruction is one static machine operation. Control-flow targets are
kept *symbolic* (label strings) so that program transformations — in
particular the extended-instruction rewriter, which deletes folded
instructions — never need to patch numeric branch offsets; addresses are
materialised only by the encoder and the simulators.

Operand conventions (uniform, simpler than MIPS):

=============  =========================================  ==============
format         assembly                                   dataflow
=============  =========================================  ==============
R3             ``op rd, rs, rt``                          rd <- rs op rt
R2_IMM         ``op rt, rs, imm``                         rt <- rs op imm
SHIFT_IMM      ``op rd, rs, shamt``                       rd <- rs op shamt
LUI            ``lui rt, imm``                            rt <- imm << 16
MEM            ``op rt, offset(rs)``                      load: rt <- M[rs+offset]
BR2/BR1        ``op rs[, rt], label``
J / JR / JALR  ``j label`` / ``jr rs`` / ``jalr rd, rs``
EXT            ``ext rd, rs, rt, conf``                   rd <- PFU(rs, rt)
=============  =========================================  ==============

Variable shifts (``sllv rd, rs, rt``) shift ``rs`` by ``rt`` — the same
operand order as every other R3 instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.isa.opcodes import Fmt, OpClass, Opcode, OpcodeInfo, opcode_info
from repro.isa.registers import reg_name
from repro.utils.bitops import to_s32


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    Unused fields are ``None``. Instances are immutable; transformations
    produce new instructions via :func:`dataclasses.replace`.
    """

    op: Opcode
    rd: int | None = None
    rs: int | None = None
    rt: int | None = None
    imm: int | None = None          # immediate / shift amount / memory offset
    target: str | None = None       # symbolic branch/jump target label
    conf: int | None = None         # PFU configuration id (EXT only)

    # ------------------------------------------------------------------
    # metadata accessors

    @property
    def info(self) -> OpcodeInfo:
        return opcode_info(self.op)

    @property
    def op_class(self) -> OpClass:
        return self.info.op_class

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.op_class in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    @property
    def is_jump(self) -> bool:
        return self.op_class is OpClass.JUMP

    @property
    def is_control(self) -> bool:
        return self.op_class in (OpClass.BRANCH, OpClass.JUMP, OpClass.HALT)

    @property
    def is_ext(self) -> bool:
        return self.op is Opcode.EXT

    # ------------------------------------------------------------------
    # register dataflow

    def defs(self) -> tuple[int, ...]:
        """Registers this instruction writes (may include $zero; writes to
        $zero are architectural no-ops and discarded by the simulators)."""
        fmt = self.info.fmt
        if fmt in (Fmt.R3, Fmt.SHIFT_IMM, Fmt.JALR, Fmt.EXT):
            return (self.rd,)  # type: ignore[return-value]
        if fmt in (Fmt.R2_IMM, Fmt.LUI):
            return (self.rt,)  # type: ignore[return-value]
        if fmt is Fmt.MEM and self.is_load:
            return (self.rt,)  # type: ignore[return-value]
        if self.op is Opcode.JAL:
            return (31,)  # $ra
        return ()

    def uses(self) -> tuple[int, ...]:
        """Registers this instruction reads, in operand order."""
        fmt = self.info.fmt
        if fmt is Fmt.R3:
            return (self.rs, self.rt)  # type: ignore[return-value]
        if fmt in (Fmt.R2_IMM, Fmt.SHIFT_IMM):
            return (self.rs,)  # type: ignore[return-value]
        if fmt is Fmt.MEM:
            if self.is_store:
                return (self.rs, self.rt)  # type: ignore[return-value]
            return (self.rs,)  # type: ignore[return-value]
        if fmt is Fmt.BR2:
            return (self.rs, self.rt)  # type: ignore[return-value]
        if fmt is Fmt.BR1 or fmt in (Fmt.JR, Fmt.JALR):
            return (self.rs,)  # type: ignore[return-value]
        if fmt is Fmt.EXT:
            srcs = [self.rs]
            if self.rt is not None and self.rt != 0:
                srcs.append(self.rt)
            return tuple(srcs)  # type: ignore[return-value]
        return ()

    # ------------------------------------------------------------------
    # rendering

    def render(self) -> str:
        """Assembly text for this instruction."""
        fmt = self.info.fmt
        name = self.op.value

        def r(num: int | None) -> str:
            assert num is not None, f"missing register in {name}"
            return f"${reg_name(num)}"

        if fmt is Fmt.R3:
            return f"{name} {r(self.rd)}, {r(self.rs)}, {r(self.rt)}"
        if fmt is Fmt.R2_IMM:
            return f"{name} {r(self.rt)}, {r(self.rs)}, {to_s32(self.imm or 0)}"
        if fmt is Fmt.SHIFT_IMM:
            return f"{name} {r(self.rd)}, {r(self.rs)}, {self.imm}"
        if fmt is Fmt.LUI:
            return f"{name} {r(self.rt)}, {self.imm}"
        if fmt is Fmt.MEM:
            return f"{name} {r(self.rt)}, {to_s32(self.imm or 0)}({r(self.rs)})"
        if fmt is Fmt.BR2:
            return f"{name} {r(self.rs)}, {r(self.rt)}, {self.target}"
        if fmt is Fmt.BR1:
            return f"{name} {r(self.rs)}, {self.target}"
        if fmt is Fmt.J:
            return f"{name} {self.target}"
        if fmt is Fmt.JR:
            return f"{name} {r(self.rs)}"
        if fmt is Fmt.JALR:
            return f"{name} {r(self.rd)}, {r(self.rs)}"
        if fmt is Fmt.EXT:
            return f"{name} {r(self.rd)}, {r(self.rs)}, {r(self.rt)}, {self.conf}"
        return name  # NONE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    def with_regs(self, mapping: dict[int, int]) -> "Instruction":
        """Return a copy with register operands renamed through ``mapping``.

        Registers absent from the mapping are left unchanged. Used by tests
        (canonicalisation invariance) and the workload builder.
        """

        def m(reg: int | None) -> int | None:
            if reg is None:
                return None
            return mapping.get(reg, reg)

        return replace(self, rd=m(self.rd), rs=m(self.rs), rt=m(self.rt))


def render_listing(instrs: Iterable[Instruction]) -> str:
    """Render instructions one per line (no labels; see Program.render)."""
    return "\n".join(f"    {ins.render()}" for ins in instrs)
