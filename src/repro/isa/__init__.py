"""The T1000 instruction set: a MIPS/PISA-like 32-bit RISC ISA.

This package defines the architectural contract everything else builds on:

- :mod:`repro.isa.registers` — the 32-entry integer register file and its
  conventional MIPS names.
- :mod:`repro.isa.opcodes` — the opcode set with per-opcode metadata
  (format, operation class, base-machine latency, extended-instruction
  candidate eligibility).
- :mod:`repro.isa.semantics` — pure evaluation functions for ALU-class
  operations, shared by the functional simulator and the PFU interpreter.
- :mod:`repro.isa.instruction` — the :class:`Instruction` record.
- :mod:`repro.isa.encoding` — 32-bit binary encode/decode.

The one extension over a plain RISC ISA is the ``ext`` opcode (§2.2 of the
paper): a register-register operation whose ``conf`` field names a PFU
configuration (an :class:`repro.extinst.ExtInstDef`).
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, OpClass, opcode_info
from repro.isa.registers import REG_NAMES, reg_name, reg_num
from repro.isa.semantics import alu_eval

__all__ = [
    "Instruction",
    "Opcode",
    "OpClass",
    "opcode_info",
    "REG_NAMES",
    "reg_name",
    "reg_num",
    "alu_eval",
]
