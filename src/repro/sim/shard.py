"""Sharded parallel trace replay with exact stat stitching.

The timing model's replay of a :class:`~repro.sim.trace.DynTrace` is a
serial scan, so a single long trace bounds every downstream workflow
(engine sweeps, served simulate batches, selection tuning) to one core.
This module time-slices a trace into K windows and replays the windows
concurrently across processes, reusing the engine scheduler's
process-pool plumbing, while keeping the paper contract intact:
**merged statistics are byte-identical to the serial replay, or the run
falls back to serial**.

How it works
------------

1. **Boundary pass (serial, cheap).** With perfect branch prediction the
   memory system and the fetch schedule have no feedback from the
   out-of-order core, so one pass over the index/address stream — the
   same dense pre-pass the fast path already caches on the trace —
   yields every instruction's absolute fetch cycle, load latency and
   I-fetch stall, plus the final cache/TLB statistics.  The PFU bank's
   *contents* (which configurations are loaded where, and their LRU
   order) are likewise a pure function of the ``conf`` sequence, so the
   pass also snapshots the bank at each slice's warmup start.  No OoO
   machinery runs here.

2. **Parallel slice replay.** Each slice replays
   ``[warmup_start, end)`` with the shard variant of the compiled fast
   loop: absolute fetch cycles and load latencies are handed in, the
   PFU bank is seeded with the boundary-pass contents, and the core
   state (RUU commit ring, register/store readiness, dispatch/commit
   bookkeeping) starts cold and converges over the warmup window, whose
   stats are discarded.  Slice 0 has no warmup — it starts from the
   true initial state, so its replay *is* the serial replay's prefix.

3. **Exactness check + stitch.** Every slice returns a *normalized*
   core-state snapshot at both its kept-region entry (post-warmup) and
   its exit.  Normalization clamps values that can no longer influence
   the future (e.g. register-ready cycles at or below the dispatch
   front) and projects the stamped resource rings onto live
   ``{cycle: count}`` maps, making snapshots horizon-independent.  By
   induction, if slice p's exit snapshot equals slice p+1's post-warmup
   snapshot at every boundary, each kept region evolved exactly as the
   serial replay would have — so the stitched stats (final slice's
   absolute commit cycle, summed kept-region PFU/stall deltas, the
   boundary pass's cache totals) are byte-identical to serial.

4. **Checkpoint-seeded repair.** Warmup convergence needs the dispatch
   front to re-anchor to the (absolute) fetch schedule somewhere inside
   the warmup window.  A machine that runs RUU-gated above the fetch
   schedule for long stretches — e.g. a reconfiguration-heavy run whose
   config stalls accumulate a permanent backlog — never re-anchors, and
   its boundaries mismatch.  Each such slice is re-run seeded with the
   *exact* exit checkpoint of its verified-exact predecessor (full core
   state, live resource-ring maps, PFU bank timing), which is exact by
   construction; repairs walk the chain left to right so every seed is
   itself verified.  Converged boundaries keep their parallel results,
   so only the misbehaving stretch of the trace pays serial cost.  An
   ineligible configuration (bimodal predictor, fast path disabled) or
   a horizon overflow at the cap still triggers the plain serial
   fallback; either way the caller never sees a non-serial result.
"""

from __future__ import annotations

import time
from array import array
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.obs import WALL, get_recorder
from repro.program.program import Program
from repro.sim.ooo.config import MachineConfig
from repro.sim.ooo.pfu import PFUBank
from repro.sim.ooo.pipeline import (
    _C_EXT,
    _C_LOAD,
    _C_MUL,
    _C_DIV,
    _C_STORE,
    _CLASS_NAMES,
    _MAX_HORIZON,
    OoOSimulator,
    _fast_loop,
)
from repro.sim.ooo.stats import SimStats
from repro.sim.trace import ColumnView, DynTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.extdef import ExtInstDef

__all__ = ["ShardPlan", "plan_slices", "simulate_sharded",
           "simulate_many_sharded"]

#: Warmup-overlap window (dynamic instructions) replayed before each
#: slice's kept region and discarded. Far above the RUU window plus any
#: reconfiguration latency, so the cold-started core state converges to
#: the serial state well before the kept region begins (verified, not
#: assumed: the boundary snapshots must match exactly).
DEFAULT_WARMUP = 4096

#: Minimum kept-region length per slice when the slice count is derived
#: from ``jobs``: below this, warmup overhead and process fan-out cost
#: more than the parallelism wins, so the plan degrades to fewer slices
#: (ultimately serial). Explicit ``slices=`` overrides (tests, fuzz).
MIN_KEPT = 16384

# per-trace caches (underscore attributes, excluded from pickling by
# DynTrace.__getstate__, keyed so a different program/config recomputes)
_FCYC_ATTR = "_shard_fcyc_cache"
_EXT_ATTR = "_shard_ext_cache"
_BANK_ATTR = "_shard_bank_cache"
_COUNT_ATTR = "_shard_class_counts"

_STALL_NAMES = (
    "fetch.icache", "dispatch.ruu_full", "dispatch.width",
    "issue.operands", "issue.store_dep", "issue.pfu_config",
    "issue.div_busy", "issue.structural", "commit.width",
)


@dataclass(frozen=True)
class ShardPlan:
    """Slice layout: ``boundaries[p] .. boundaries[p+1]`` is slice p's
    kept region; every slice but the first replays ``warmup`` extra
    instructions before its kept region and discards their stats."""

    boundaries: tuple[int, ...]
    warmup: int

    @property
    def n_slices(self) -> int:
        return len(self.boundaries) - 1

    def warm_start(self, p: int) -> int:
        if p == 0:
            return 0
        return max(0, self.boundaries[p] - self.warmup)

    @property
    def warmup_instructions(self) -> int:
        return sum(
            self.boundaries[p] - self.warm_start(p)
            for p in range(1, self.n_slices)
        )


def plan_slices(
    n: int,
    jobs: int,
    slices: int | None = None,
    warmup: int | None = None,
    min_kept: int = MIN_KEPT,
) -> ShardPlan | None:
    """Slice layout for an ``n``-instruction trace, or None when sharding
    cannot pay off (short trace, single job).

    ``slices`` defaults to ``jobs``, shrunk until every kept region has
    at least ``min_kept`` instructions; passing ``slices`` explicitly
    bypasses the minimum (test/fuzz hook). ``warmup`` defaults to
    :data:`DEFAULT_WARMUP`.
    """
    if warmup is None:
        warmup = DEFAULT_WARMUP
    if warmup < 0:
        warmup = 0
    if slices is None:
        slices = max(1, jobs)
        while slices > 1 and n // slices < min_kept:
            slices -= 1
    if slices <= 1 or n < slices:
        return None
    boundaries = tuple((p * n) // slices for p in range(slices + 1))
    if any(boundaries[p + 1] <= boundaries[p] for p in range(slices)):
        return None
    return ShardPlan(boundaries=boundaries, warmup=warmup)


# ----------------------------------------------------------------------
# boundary pass: per-slice seed state from the index/address stream


def _fcyc_array(sim: OoOSimulator, trace: DynTrace, fextra, taken):
    """Absolute fetch cycles as a sliceable array (cached on the trace
    alongside the list form the serial fast path uses)."""
    key = (
        id(trace.indices), len(trace), sim.config.hierarchy,
        sim.config.fetch_width,
    )
    cached = getattr(trace, _FCYC_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    fcyc = array("q", sim._fetch_cycles(trace, fextra, taken))
    setattr(trace, _FCYC_ATTR, (key, fcyc))
    return fcyc


def _ext_sequence(sim: OoOSimulator, trace: DynTrace):
    """(dynamic index, conf) of every ext instruction, in order."""
    indices = trace.indices
    key = (id(indices), len(indices), id(sim.program.text))
    cached = getattr(trace, _EXT_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    cls_tab, conf_tab = sim._cls, sim._conf
    seq = [
        (k, conf_tab[si])
        for k, si in enumerate(indices)
        if cls_tab[si] == _C_EXT
    ]
    setattr(trace, _EXT_ATTR, (key, seq))
    return seq


def _bank_snapshot(bank: PFUBank):
    if bank.n_pfus is None:
        return ("u", tuple(sorted(bank._ready_by_conf)))
    return (
        "l",
        tuple(slot.tag for slot in bank._slots),
        tuple(bank._lru.keys()),
    )


def _bank_seeds(sim: OoOSimulator, trace: DynTrace, plan: ShardPlan):
    """PFU-bank contents at each slice's warmup start.

    Which configurations are resident (and their slot placement and LRU
    order) is a pure function of the ``conf`` sequence — eviction picks
    the first empty slot, else the LRU victim — so a zero-cycle walk
    over the ext instructions reconstructs the exact contents without
    any timing state. Slice 0 needs no seed (it starts cold, exactly
    like serial)."""
    if _C_EXT not in sim._present:
        return None
    cfg = sim.config
    indices = trace.indices
    key = (
        id(indices), len(indices), id(sim.program.text),
        cfg.n_pfus, plan.boundaries, plan.warmup,
    )
    cached = getattr(trace, _BANK_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    seq = _ext_sequence(sim, trace)
    bank = PFUBank(cfg.n_pfus, 0)
    seeds: list = [None]
    pos = 0
    for p in range(1, plan.n_slices):
        w0 = plan.warm_start(p)
        while pos < len(seq) and seq[pos][0] < w0:
            bank.acquire(seq[pos][1], 0)
            pos += 1
        seeds.append(_bank_snapshot(bank))
    setattr(trace, _BANK_ATTR, (key, seeds))
    return seeds


def _class_counts(sim: OoOSimulator, trace: DynTrace) -> list[int]:
    indices = trace.indices
    key = (id(indices), len(indices), id(sim.program.text))
    cached = getattr(trace, _COUNT_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    counts = [0] * len(_CLASS_NAMES)
    cls_tab = sim._cls
    for si, cnt in Counter(indices).items():
        counts[cls_tab[si]] += cnt
    setattr(trace, _COUNT_ATTR, (key, counts))
    return counts


def _prepare(sim: OoOSimulator, trace: DynTrace, plan: ShardPlan,
             obs_live: bool):
    """Boundary pass: slice payloads (picklable) plus the parent-side
    data the stitch step needs."""
    fextra, taken, mlat, cache_snapshot = sim._dense_pass(trace)
    fcyc = _fcyc_array(sim, trace, fextra, taken)
    seeds = _bank_seeds(sim, trace, plan)
    counts = _class_counts(sim, trace)
    payloads = []
    ext_defs = sim.ext_defs or None
    # Zero-copy slicing: every slice's four columns are ColumnView
    # windows over the shared buffers — a million-instruction trace is
    # no longer copied once per slice.  Views materialise as plain
    # arrays only when pickled to a pool worker.
    fcyc_view = ColumnView(fcyc)
    mlat_view = ColumnView(mlat)
    for p in range(plan.n_slices):
        b0, b1 = plan.boundaries[p], plan.boundaries[p + 1]
        w0 = plan.warm_start(p)
        idx_view, addr_view = trace.column_views(w0, b1)
        payloads.append({
            "program": sim.program,
            "config": sim.config,
            "ext_defs": ext_defs,
            "obs": obs_live,
            "k_stats": b0 - w0,
            "indices": idx_view,
            "addrs": addr_view,
            "fcyc": fcyc_view[w0:b1],
            "mlat": mlat_view[w0:b1],
            "bank_seed": seeds[p] if seeds else None,
        })
    aux = {
        "cache": cache_snapshot,
        "fextra_sum": sum(fextra),
        "class_counts": counts,
    }
    return payloads, aux


# ----------------------------------------------------------------------
# slice replay (runs in worker processes; must stay module-level)


def _seed_bank(sim: OoOSimulator, seed) -> PFUBank:
    cfg = sim.config
    bank = PFUBank(
        cfg.n_pfus, cfg.reconfig_latency,
        latency_by_conf=sim._reconfig_by_conf or None,
    )
    if seed is None:
        return bank
    if seed[0] == "u":
        # unlimited mode: residency is all that matters; the original
        # load completed long before this slice's kept region
        bank._ready_by_conf = {conf: 0 for conf in seed[1]}
        return bank
    _, tags, lru_order = seed
    for idx, tag in enumerate(tags):
        if tag is not None:
            bank._slots[idx].tag = tag
            bank._slot_of[tag] = idx
    for tag in lru_order:
        bank._lru.touch(tag)
    return bank


def _bank_norm(bank: PFUBank, disp_cycle: int):
    """Bank state with timing fields clamped to their liveness bounds
    (a config-ready or last-issue cycle at or below the dispatch front
    can never influence a future acquire/issue)."""
    live = disp_cycle + 1
    if bank.n_pfus is None:
        return ("u", tuple(sorted(
            (conf, ready if ready > live else 0)
            for conf, ready in bank._ready_by_conf.items()
        )))
    slots = tuple(
        (
            slot.tag,
            slot.config_ready if slot.config_ready > live else 0,
            slot.last_issue if slot.last_issue >= disp_cycle else -1,
        )
        for slot in bank._slots
    )
    return ("l", slots, tuple(bank._lru.keys()))


def _normalize(state, ring_pairs, pfu_rings, bank: PFUBank,
               ruu: int, last_k: int):
    """Project core state at a slice boundary onto its future-observable
    part, so the post-warmup snapshot of slice p+1 can be compared
    against the exit snapshot of slice p.

    Every future probe happens at or after the dispatch front: dispatch
    cycles are non-decreasing and issue probes start one cycle later, so
    commit-ring entries below ``disp_cycle``, readiness cycles at or
    below ``disp_cycle + 1``, and resource-ring stamps at or below
    ``disp_cycle`` are dead and clamp to a canonical value. The stamped
    rings export as sorted live ``(cycle, count)`` maps, which also
    makes the snapshot independent of the ring horizon (slices may
    retry overflow with larger rings locally). The commit ring exports
    in age order — ``last_k`` is the local index of the last replayed
    instruction — so slices with different local offsets compare the
    same ``ruu`` most recent commit cycles."""
    (disp_cycle, disp_n, ring, reg_ready, store_ready,
     div_free, commit_cycle, commit_n) = state
    live = disp_cycle + 1
    ages = tuple(
        v if v >= disp_cycle else 0
        for v in (ring[(last_k - i) % ruu] for i in range(ruu))
    )
    regs = tuple(v if v > live else 0 for v in reg_ready)
    stores = (
        tuple(sorted(
            (addr, v) for addr, v in store_ready.items() if v > live
        ))
        if store_ready else ()
    )
    res = tuple(
        None if stamps is None else tuple(sorted(
            (st, ct) for st, ct in zip(stamps, counts)
            if ct and st > disp_cycle
        ))
        for stamps, counts in ring_pairs
    )
    pfu = tuple(
        tuple(sorted(st for st in ps if st > disp_cycle))
        for ps in pfu_rings
    )
    return (
        disp_cycle, disp_n, commit_cycle, commit_n, ages, regs, stores,
        div_free if div_free > live else 0, res, pfu,
        _bank_norm(bank, disp_cycle),
    )


def _export_exact(state, ring_pairs, pfu_rings, bank: PFUBank,
                  ruu: int, last_k: int, horizon: int):
    """Exact exit checkpoint: the full core state plus the live part of
    every stamped ring, sufficient to seed a successor slice with no
    warmup at all.  Dead ring slots (stamp at or below the dispatch
    front) are dropped — they are unreachable by any future probe — so
    the checkpoint stays horizon-independent and small."""
    (disp_cycle, disp_n, ring, reg_ready, store_ready,
     div_free, commit_cycle, commit_n) = state
    live = disp_cycle + 1
    return {
        # commit ring in age order (newest first), unclamped
        "core": (
            disp_cycle, disp_n,
            [ring[(last_k - i) % ruu] for i in range(ruu)],
            list(reg_ready),
            {a: v for a, v in store_ready.items() if v > live},
            div_free, commit_cycle, commit_n,
        ),
        "rings": tuple(
            None if stamps is None else {
                st: ct for st, ct in zip(stamps, counts)
                if ct and st > disp_cycle
            }
            for stamps, counts in ring_pairs
        ),
        "pfu_rings": tuple(
            [st for st in ps if st > disp_cycle] for ps in pfu_rings
        ),
        "bank": (
            ("u", tuple(bank._ready_by_conf.items()))
            if bank.n_pfus is None else
            ("l",
             tuple((s.tag, s.config_ready, s.last_issue)
                   for s in bank._slots),
             tuple(bank._lru.keys()))
        ),
        "horizon": horizon,
    }


def _seed_bank_exact(sim: OoOSimulator, snap) -> PFUBank:
    cfg = sim.config
    bank = PFUBank(
        cfg.n_pfus, cfg.reconfig_latency,
        latency_by_conf=sim._reconfig_by_conf or None,
    )
    if snap[0] == "u":
        bank._ready_by_conf = dict(snap[1])
        return bank
    _, slots, lru_order = snap
    for idx, (tag, config_ready, last_issue) in enumerate(slots):
        slot = bank._slots[idx]
        slot.config_ready = config_ready
        slot.last_issue = last_issue
        if tag is not None:
            slot.tag = tag
            bank._slot_of[tag] = idx
    for tag in lru_order:
        bank._lru.touch(tag)
    return bank


def _attempt_slice(sim: OoOSimulator, loop, per_k, indices, addrs, fcyc,
                   mlat, k_stats, bank_seed, horizon, obs_live,
                   has_mul, has_div, has_mem, has_ext, multi,
                   exact_seed=None):
    """One horizon attempt. Normally: warmup segment then kept segment,
    with state continuity between them. With ``exact_seed`` (a repair
    re-run): the warmup segment is skipped and everything — core state,
    resource rings, PFU bank timing — is restored from the predecessor
    slice's exit checkpoint. Returns None on horizon overflow."""
    cfg = sim.config
    ruu = cfg.ruu_size
    mask = horizon - 1
    if exact_seed is None:
        bank = _seed_bank(sim, bank_seed)
    else:
        bank = _seed_bank_exact(sim, exact_seed["bank"])
    iss_s = [0] * horizon
    iss_c = [0] * horizon
    alu_s = alu_c = mul_s = mul_c = mem_s = mem_c = None
    if multi:
        alu_s = [0] * horizon
        alu_c = [0] * horizon
    if has_mul or has_div:
        mul_s = [0] * horizon
        mul_c = [0] * horizon
    if has_mem:
        mem_s = [0] * horizon
        mem_c = [0] * horizon
    pfu_s = (
        [[0] * horizon for _ in range(cfg.n_pfus)]
        if has_ext and cfg.n_pfus else None
    )
    tail = (
        sim._conf, cfg.decode_width, cfg.issue_width, cfg.commit_width,
        cfg.ruu_size, cfg.n_ialu, cfg.n_imult, cfg.n_memports,
        horizon, bank, iss_s, iss_c, alu_s, alu_c, mul_s, mul_c,
        mem_s, mem_c, pfu_s, 0, -1, None,
    )
    ring_pairs = ((iss_s, iss_c), (alu_s, alu_c),
                  (mul_s, mul_c), (mem_s, mem_c))
    pfu_rings = pfu_s or ()

    def seg(lo, hi, st):
        return loop(per_k[lo:hi], indices[lo:hi], addrs[lo:hi],
                    fcyc[lo:hi], mlat[lo:hi], *tail, st)

    w = k_stats
    if exact_seed is not None:
        # restore the live ring entries; the checkpoint's horizon bounds
        # the live span, so with horizon >= checkpoint horizon no two
        # live stamps collide in the same slot
        for snap, pair in zip(exact_seed["rings"], ring_pairs):
            if snap:
                stamps, counts = pair
                for st, ct in snap.items():
                    i = st & mask
                    stamps[i] = st
                    counts[i] = ct
        for snap, ps in zip(exact_seed["pfu_rings"], pfu_rings):
            for st in snap:
                ps[st & mask] = st
        core = exact_seed["core"]
        ages = core[2]
        # local slot j is read by local instruction j, which needs the
        # commit cycle of the instruction ruu back: global b_p + j - ruu
        # = the (ruu - 1 - j)-th newest committed instruction
        ring_b = [ages[ruu - 1 - j] for j in range(ruu)]
        seed_b = (core[0], core[1], ring_b, list(core[3]),
                  dict(core[4]), core[5], core[6], core[7])
        warm_commit = core[6]
        warm_snap = None
    else:
        seed = (1, 0, [0] * ruu, [0] * 32, {}, 0, 1, 0)
        warm_commit = 1
        if w:
            out_a = seg(0, w, seed)
            if out_a is None:
                return None
            warm_commit = out_a[0]
            state_a = out_a[4]
        else:
            state_a = seed
        warm_snap = _normalize(state_a, ring_pairs, pfu_rings, bank,
                               ruu, w - 1)
        # The kept segment indexes the commit ring by its own local k;
        # its slot j must hold the commit cycle of the instruction ruu
        # entries back, which the warmup stored at slot (j + w) % ruu.
        ring_a = state_a[2]
        if w % ruu:
            ring_b = [ring_a[(j + w) % ruu] for j in range(ruu)]
        else:
            ring_b = ring_a
        seed_b = (state_a[0], state_a[1], ring_b, state_a[3], state_a[4],
                  state_a[5], state_a[6], state_a[7])
    mid = (bank.hits, bank.misses, bank.reconfig_cycles)
    out_b = seg(w, len(per_k), seed_b)
    if out_b is None:
        return None
    commit_cycle, stalls, widths, reconfigs, state_b = out_b
    kept = len(per_k) - w
    exit_snap = _normalize(state_b, ring_pairs, pfu_rings, bank, ruu,
                           kept - 1)
    return {
        "warm_snap": warm_snap,
        "exit_snap": exit_snap,
        "exit_exact": _export_exact(state_b, ring_pairs, pfu_rings, bank,
                                    ruu, kept - 1, horizon),
        "warm_commit": warm_commit,
        "commit_cycle": commit_cycle,
        "stalls": stalls,
        "pfu": (bank.hits - mid[0], bank.misses - mid[1],
                bank.reconfig_cycles - mid[2]),
        "issue_widths": list(widths) if widths else [],
        "residual_widths": [ct for ct in iss_c if ct] if obs_live else [],
        "reconfigs": list(reconfigs) if reconfigs else [],
        "horizon": horizon,
    }


def _column_data(column):
    """The raw sliceable buffer behind a payload column: the
    ``memoryview`` inside a :class:`ColumnView` (inline replay — index
    access and re-slicing at C speed, still zero-copy) or the plain
    array a pool worker unpickled."""
    return column.raw if isinstance(column, ColumnView) else column


def _replay_slice(payload: dict) -> dict:
    """Module-level slice runner (picklable for the process pool)."""
    sim = OoOSimulator(
        payload["program"], payload["config"],
        ext_defs=payload["ext_defs"],
    )
    indices = _column_data(payload["indices"])
    per_k = list(map(sim._static_tab.__getitem__, indices))
    present = sim._present
    has_mul = _C_MUL in present
    has_div = _C_DIV in present
    has_mem = _C_LOAD in present or _C_STORE in present
    has_ext = _C_EXT in present
    multi = has_mul or has_div or has_mem or has_ext
    obs_live = payload["obs"]
    exact_seed = payload.get("exact_seed")
    loop = _fast_loop(has_mul, has_div, has_mem, has_ext,
                      obs_live, False, shard=True)
    horizon = sim._initial_horizon()
    if exact_seed is not None:
        horizon = max(horizon, exact_seed["horizon"])
    while horizon <= _MAX_HORIZON:
        out = _attempt_slice(
            sim, loop, per_k, indices,
            _column_data(payload["addrs"]), _column_data(payload["fcyc"]),
            _column_data(payload["mlat"]),
            payload["k_stats"], payload["bank_seed"],
            horizon, obs_live, has_mul, has_div, has_mem, has_ext, multi,
            exact_seed=exact_seed,
        )
        if out is not None:
            return out
        horizon *= 8
    return {"fallback": "horizon_overflow"}


# ----------------------------------------------------------------------
# stitch + drivers


def _verify_and_repair(sim: OoOSimulator, payloads: list[dict],
                       outs: list[dict]) -> int | None:
    """Walk the boundary chain left to right; every slice whose
    post-warmup snapshot mismatches its (verified-exact) predecessor's
    exit snapshot is re-run in place, seeded with the predecessor's
    exact exit checkpoint — exact by construction, so the walk's
    invariant (every slice up to p is exact) is restored and the chain
    continues. Returns the number of repaired slices, or None if a
    repair itself failed (horizon overflow at the cap)."""
    repaired = 0
    for p in range(len(outs) - 1):
        if outs[p]["exit_snap"] == outs[p + 1]["warm_snap"]:
            continue
        redo = _replay_slice({
            **payloads[p + 1], "exact_seed": outs[p]["exit_exact"],
        })
        if "fallback" in redo:
            return None
        outs[p + 1] = redo
        repaired += 1
    return repaired


def _stitch(sim: OoOSimulator, n: int, outs: list[dict], aux: dict,
            obs) -> SimStats:
    """Merge the verified per-slice results into one ``SimStats``."""
    counts = aux["class_counts"]
    stats = SimStats()
    stats.cycles = outs[-1]["commit_cycle"]
    stats.instructions = n
    stats.ext_instructions = counts[_C_EXT]
    stats.pfu_hits = sum(o["pfu"][0] for o in outs)
    stats.pfu_misses = sum(o["pfu"][1] for o in outs)
    stats.reconfig_cycles = sum(o["pfu"][2] for o in outs)
    stats.class_counts = {
        name: counts[i] for i, name in enumerate(_CLASS_NAMES)
    }
    stats.cache = {
        level: st.copy() for level, st in aux["cache"].items()
    }
    if obs is not None:
        totals = [sum(o["stalls"][j] for o in outs) for j in range(8)]
        stats.stall_cycles = {
            reason: cycles
            for reason, cycles in zip(
                _STALL_NAMES, (aux["fextra_sum"], *totals)
            )
            if cycles
        }
    return stats


def _publish_shard(sim: OoOSimulator, obs, plan: ShardPlan, n: int,
                   outs: list[dict], stats: SimStats,
                   stitch_seconds: float, wall_start: float,
                   repaired: int) -> None:
    """Shard-run observability: the standard simulation metrics plus
    shard-specific counters, stitch-overhead/warmup histograms, and one
    simulated-cycles span per slice's kept region."""
    if obs is None:
        return
    prog = sim.program.name
    widths: list[int] = []
    reconfigs: list = []
    for o in outs:
        widths.extend(o["issue_widths"])
        reconfigs.extend(o["reconfigs"])
    # serial runs flush the residual in-flight issue-width ring once at
    # the end; the last slice's residual is the closest equivalent
    widths.extend(outs[-1]["residual_widths"])
    sim._publish(obs, stats, widths, reconfigs)
    obs.counter("sim.shard.runs", program=prog).inc()
    obs.counter("sim.shard.slices", program=prog).inc(plan.n_slices)
    if repaired:
        obs.counter("sim.shard.repairs", program=prog).inc(repaired)
    obs.histogram("sim.shard.stitch.ms", program=prog).observe(
        stitch_seconds * 1000.0
    )
    if n:
        obs.histogram("sim.shard.warmup.frac", program=prog).observe(
            plan.warmup_instructions / n
        )
    for p, o in enumerate(outs):
        obs.add_span(
            "sim.shard.slice", o["warm_commit"], o["commit_cycle"],
            track="shard", slice=p, program=prog,
        )
    obs.add_span(
        "sim.timing", wall_start - obs.epoch,
        time.perf_counter() - obs.epoch, clock=WALL, track="main",
        program=prog, instructions=stats.instructions,
        cycles=stats.cycles, sharded=True, slices=plan.n_slices,
    )


def _plan_for(sim: OoOSimulator, n: int, jobs: int,
              slices: int | None, warmup: int | None) -> ShardPlan | None:
    """Sharding eligibility mirrors the fast path's: perfect prediction
    and the fast loop enabled (the dense boundary pass needs both), and
    a plan whose parallelism can pay off (or explicit ``slices``)."""
    if not sim._fast_eligible():
        return None
    if slices is None and jobs <= 1:
        return None
    return plan_slices(n, jobs, slices=slices, warmup=warmup)


def simulate_many_sharded(
    program: Program,
    trace: DynTrace,
    configs,
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    *,
    jobs: int = 1,
    slices: int | None = None,
    warmup: int | None = None,
) -> list[SimStats]:
    """Replay one trace under many configurations, fanning every
    (configuration, slice) pair into a single scheduler run.

    Results are byte-identical to serial :func:`simulate_many` —
    ineligible configurations, too-short traces, and any slice whose
    boundary check fails run serially instead (per configuration).
    """
    from repro.engine.scheduler import Job, JobGraph, Scheduler

    rec = get_recorder()
    obs = rec if rec.enabled else None
    sims = [
        OoOSimulator(program, cfg, ext_defs=ext_defs) for cfg in configs
    ]
    n = len(trace)
    graph = JobGraph()
    prepared: dict[int, tuple] = {}
    wall_start = time.perf_counter()
    for ci, sim in enumerate(sims):
        plan = _plan_for(sim, n, jobs, slices, warmup)
        if plan is None:
            continue
        t0 = time.perf_counter()
        payloads, aux = _prepare(sim, trace, plan, obs is not None)
        prepared[ci] = (plan, payloads, aux, time.perf_counter() - t0)
        for p, payload in enumerate(payloads):
            graph.add(Job(
                job_id=f"shard:{ci}:{p}", kind="sim.shard",
                payload=payload,
            ))

    results_by_job: dict = {}
    if len(graph):
        scheduler = Scheduler(jobs=max(1, jobs))
        results_by_job = scheduler.run(graph, _replay_slice)

    out: list[SimStats] = []
    for ci, sim in enumerate(sims):
        entry = prepared.get(ci)
        if entry is not None:
            plan, payloads, aux, prep_seconds = entry
            slice_outs: list[dict] = []
            reason = None
            for p in range(len(payloads)):
                result = results_by_job.get(f"shard:{ci}:{p}")
                if result is None or not result.ok:
                    reason = "job_failed"
                    break
                if "fallback" in result.value:
                    reason = result.value["fallback"]
                    break
                slice_outs.append(result.value)
            stats = None
            repaired = 0
            if reason is None:
                t0 = time.perf_counter()
                repaired = _verify_and_repair(sim, payloads, slice_outs)
                if repaired is None:
                    reason = "repair_overflow"
                else:
                    stats = _stitch(sim, n, slice_outs, aux, obs)
                stitch_seconds = prep_seconds + time.perf_counter() - t0
            if stats is not None:
                _publish_shard(sim, obs, plan, n, slice_outs, stats,
                               stitch_seconds, wall_start, repaired)
                out.append(stats)
                continue
            if obs is not None:
                obs.counter(
                    "sim.shard.fallback",
                    program=sim.program.name, reason=reason,
                ).inc()
        out.append(sim.simulate(trace))
    return out


def simulate_sharded(
    program: Program,
    trace: DynTrace,
    config: MachineConfig | None = None,
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    *,
    jobs: int = 1,
    slices: int | None = None,
    warmup: int | None = None,
    record_window: tuple[int, int] | None = None,
) -> SimStats:
    """Sharded replay of one trace under one configuration.

    Byte-identical to ``OoOSimulator(...).simulate(trace)``; serial
    execution is used whenever sharding is ineligible (timeline
    recording, bimodal prediction, fast path disabled, short trace) or
    the exactness check fails.
    """
    if record_window is not None:
        return OoOSimulator(program, config, ext_defs=ext_defs).simulate(
            trace, record_window
        )
    return simulate_many_sharded(
        program, trace, [config], ext_defs=ext_defs,
        jobs=jobs, slices=slices, warmup=warmup,
    )[0]
