"""The three-level memory hierarchy: L1I + L1D, unified L2, main memory,
plus instruction and data TLBs.

Defaults mirror SimpleScalar ``sim-outorder``: 16 KiB direct-mapped L1I
(256x1x64... see below), 16 KiB 4-way L1D, 256 KiB 4-way unified L2,
1-cycle L1 hits, 6-cycle L2 hits, 18-cycle memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cache.cache import Cache, CacheConfig
from repro.sim.cache.tlb import TLB, TLBConfig


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration of the full memory hierarchy."""

    il1: CacheConfig = CacheConfig("il1", nsets=256, assoc=1, line_size=32, hit_latency=1)
    dl1: CacheConfig = CacheConfig("dl1", nsets=128, assoc=4, line_size=32, hit_latency=1)
    ul2: CacheConfig = CacheConfig("ul2", nsets=1024, assoc=4, line_size=64, hit_latency=6)
    itlb: TLBConfig = TLBConfig("itlb", entries=64, assoc=4)
    dtlb: TLBConfig = TLBConfig("dtlb", entries=128, assoc=4)
    mem_latency: int = 18


class MemoryHierarchy:
    """Latency oracle for instruction fetches, loads, and stores."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.il1 = Cache(self.config.il1)
        self.dl1 = Cache(self.config.dl1)
        self.ul2 = Cache(self.config.ul2)
        self.itlb = TLB(self.config.itlb)
        self.dtlb = TLB(self.config.dtlb)

    def _access(self, l1: Cache, addr: int, is_write: bool) -> int:
        latency = l1.config.hit_latency
        if not l1.access(addr, is_write):
            latency += self.ul2.config.hit_latency
            if not self.ul2.access(addr, is_write):
                latency += self.config.mem_latency
        return latency

    def ifetch(self, addr: int) -> int:
        """Cycles to fetch the instruction cache line containing ``addr``."""
        return self.itlb.translate(addr) + self._access(self.il1, addr, False)

    def dload(self, addr: int) -> int:
        """Cycles for a data load at ``addr``."""
        return self.dtlb.translate(addr) + self._access(self.dl1, addr, False)

    def dstore(self, addr: int) -> int:
        """Cycles for a data store at ``addr`` (latency is charged to the
        cache-state update; the pipeline hides it behind the store buffer)."""
        return self.dtlb.translate(addr) + self._access(self.dl1, addr, True)
