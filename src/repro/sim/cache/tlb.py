"""TLB model: a set-associative tag store over page numbers.

A TLB miss charges a fixed refill penalty (software-managed refill on the
order of SimpleScalar's default 30 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.cache.cache import Cache, CacheConfig, CacheStats


@dataclass(frozen=True)
class TLBConfig:
    name: str
    entries: int
    assoc: int
    page_size: int = 4096
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        if self.entries % self.assoc:
            raise ConfigurationError(
                f"{self.name}: entries {self.entries} not divisible by assoc"
            )


class TLB:
    """Maps a virtual address to a translation latency (0 on hit)."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        # Reuse the cache machinery: one "line" per page, sets x assoc tags.
        self._store = Cache(
            CacheConfig(
                name=config.name,
                nsets=config.entries // config.assoc,
                assoc=config.assoc,
                line_size=config.page_size,
                hit_latency=1,
            )
        )

    @property
    def stats(self) -> CacheStats:
        return self._store.stats

    def translate(self, addr: int) -> int:
        """Extra cycles incurred by translating ``addr``."""
        if self._store.access(addr):
            return 0
        return self.config.miss_penalty
