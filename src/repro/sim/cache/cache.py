"""Set-associative cache with true-LRU replacement.

Timing-only: no data is stored, just tags. Write policy is write-back /
write-allocate; dirty evictions are counted but modelled as overlapped
with execution (no added latency), matching the level of detail the
paper's evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    nsets: int
    assoc: int
    line_size: int  # bytes
    hit_latency: int

    def __post_init__(self) -> None:
        for label, value in (
            ("nsets", self.nsets),
            ("assoc", self.assoc),
            ("line_size", self.line_size),
        ):
            if not _is_pow2(value):
                raise ConfigurationError(
                    f"{self.name}: {label} must be a power of two, got {value}"
                )
        if self.hit_latency < 1:
            raise ConfigurationError(f"{self.name}: hit_latency must be >= 1")

    @property
    def size_bytes(self) -> int:
        return self.nsets * self.assoc * self.line_size


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One cache level. ``access`` returns True on hit."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._offset_bits = config.line_size.bit_length() - 1
        self._index_mask = config.nsets - 1
        # per set: tag -> (lru stamp, dirty)
        self._sets: list[dict[int, list]] = [dict() for _ in range(config.nsets)]
        self._clock = 0

    def _locate(self, addr: int) -> tuple[dict[int, list], int]:
        line = addr >> self._offset_bits
        return self._sets[line & self._index_mask], line >> (
            self._index_mask.bit_length()
        )

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; allocate on miss. Returns hit/miss."""
        self._clock += 1
        entries, tag = self._locate(addr)
        self.stats.accesses += 1
        entry = entries.get(tag)
        if entry is not None:
            self.stats.hits += 1
            entry[0] = self._clock
            entry[1] = entry[1] or is_write
            return True
        self.stats.misses += 1
        if len(entries) >= self.config.assoc:
            victim = min(entries, key=lambda t: entries[t][0])
            if entries[victim][1]:
                self.stats.writebacks += 1
            del entries[victim]
            self.stats.evictions += 1
        entries[tag] = [self._clock, is_write]
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without touching LRU state or stats."""
        entries, tag = self._locate(addr)
        return tag in entries

    def flush(self) -> None:
        """Invalidate all lines (dirty lines counted as writebacks)."""
        for entries in self._sets:
            for entry in entries.values():
                if entry[1]:
                    self.stats.writebacks += 1
            entries.clear()
