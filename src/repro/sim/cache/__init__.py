"""Cache and TLB models.

"We simulate realistic instruction, data, and second-level unified caches,
as well as instruction and data TLBs" (§3.1). Configurations default to
the SimpleScalar ``sim-outorder`` values the paper's tool set shipped with.
"""

from repro.sim.cache.cache import Cache, CacheConfig, CacheStats
from repro.sim.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.sim.cache.tlb import TLB, TLBConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "TLB",
    "TLBConfig",
    "MemoryHierarchy",
    "HierarchyConfig",
]
