"""The architectural (functional) simulator.

Executes a :class:`Program` exactly — this is the reference semantics the
timing model trusts, and the oracle the extended-instruction rewriter is
validated against (rewritten programs must produce identical final state).

Instructions are pre-decoded into flat tuples dispatched on a small
integer kind; this keeps the interpreter loop simple and fast without a
separate compilation step (see the profiling guidance in the HPC notes:
make it work, measure, then optimise the hot loop only).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import SimulationError
from repro.isa.encoding import TEXT_BASE
from repro.obs import get_recorder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, Opcode, opcode_info
from repro.isa.semantics import _EVAL  # shared dispatch table
from repro.program.program import DATA_BASE, STACK_TOP, Program
from repro.sim.memory import Memory
from repro.sim.trace import DynTrace
from repro.utils.bitops import effective_width, to_s32, to_u32

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.extdef import ExtInstDef

# decoded-instruction kinds
_K_ALU_REG = 0    # dst <- fn(regs[a], regs[b])
_K_ALU_IMM = 1    # dst <- fn(regs[a], imm)
_K_LUI = 2
_K_LOAD = 3
_K_STORE = 4
_K_BRANCH = 5
_K_J = 6
_K_JAL = 7
_K_JR = 8
_K_JALR = 9
_K_NOP = 10
_K_HALT = 11
_K_EXT = 12

# branch condition codes
_COND = {
    Opcode.BEQ: 0,
    Opcode.BNE: 1,
    Opcode.BLEZ: 2,
    Opcode.BGTZ: 3,
    Opcode.BLTZ: 4,
    Opcode.BGEZ: 5,
}

_LOAD_SPEC = {
    Opcode.LW: (4, True),
    Opcode.LH: (2, True),
    Opcode.LHU: (2, False),
    Opcode.LB: (1, True),
    Opcode.LBU: (1, False),
}
_STORE_SPEC = {Opcode.SW: 4, Opcode.SH: 2, Opcode.SB: 1}


@dataclass
class BitwidthProfile:
    """Max observed operand/result widths per static instruction.

    This is the reproduction of the paper's profiling tool (§4): "generates
    detailed profiles on operand bit-width". Widths use the min of the
    signed/unsigned interpretation (see :func:`effective_width`).
    """

    max_operand_width: list[int]
    max_result_width: list[int]

    @classmethod
    def empty(cls, n: int) -> "BitwidthProfile":
        return cls([0] * n, [0] * n)


@dataclass
class ExecutionResult:
    """Outcome of a functional run."""

    steps: int
    halted: bool
    regs: list[int]
    memory: Memory
    trace: DynTrace | None = None
    exec_counts: list[int] | None = None
    bitwidths: BitwidthProfile | None = None
    program: Program | None = None

    def reg(self, num: int) -> int:
        """Unsigned value of register ``num``."""
        return self.regs[num]

    def reg_signed(self, num: int) -> int:
        return to_s32(self.regs[num])


class FunctionalSimulator:
    """Architectural simulator for one program.

    Args:
        program: the program to execute.
        ext_defs: mapping of ``conf`` id -> extended-instruction definition
            (anything with an ``evaluate(a, b) -> int`` method). Required
            only if the program contains ``ext`` instructions.
        memory: optionally a preconstructed memory (data image is loaded
            into it); a fresh one is created by default.
    """

    def __init__(
        self,
        program: Program,
        ext_defs: Mapping[int, "ExtInstDef"] | None = None,
        memory: Memory | None = None,
        compile_blocks: bool | None = None,
    ) -> None:
        """``compile_blocks`` selects the execution path: ``True`` forces
        the block-compiled fast interpreter (:mod:`repro.sim.compile`),
        ``False`` forces the reference loop, and ``None`` (default) uses
        the fast path unless ``REPRO_SIM_REFERENCE=1`` is set. Profiling
        runs use a profiling variant of the compiled blocks."""
        program.validate()
        self.program = program
        self.ext_defs = dict(ext_defs or {})
        self.memory = memory if memory is not None else Memory()
        self.memory.load_image(DATA_BASE, program.data)
        self.compile_blocks = compile_blocks
        self._decoded = [self._decode(i, ins) for i, ins in enumerate(program.text)]

    # ------------------------------------------------------------------

    def _decode(self, index: int, instr: Instruction) -> tuple:
        op = instr.op
        info = opcode_info(op)
        fmt = info.fmt
        if fmt is Fmt.R3:
            return (_K_ALU_REG, _EVAL[op], instr.rd, instr.rs, instr.rt)
        if fmt is Fmt.R2_IMM:
            imm = to_u32(instr.imm or 0)
            return (_K_ALU_IMM, _EVAL[op], instr.rt, instr.rs, imm)
        if fmt is Fmt.SHIFT_IMM:
            return (_K_ALU_IMM, _EVAL[op], instr.rd, instr.rs, instr.imm or 0)
        if fmt is Fmt.LUI:
            return (_K_LUI, to_u32((instr.imm or 0) << 16), instr.rt)
        if fmt is Fmt.MEM:
            if instr.is_load:
                size, signed = _LOAD_SPEC[op]
                return (_K_LOAD, size, signed, instr.rt, instr.rs, instr.imm or 0)
            return (_K_STORE, _STORE_SPEC[op], instr.rt, instr.rs, instr.imm or 0)
        if fmt in (Fmt.BR2, Fmt.BR1):
            target = self.program.target_index(instr)
            return (_K_BRANCH, _COND[op], instr.rs, instr.rt or 0, target)
        if fmt is Fmt.J:
            target = self.program.target_index(instr)
            if op is Opcode.JAL:
                return (_K_JAL, target)
            return (_K_J, target)
        if fmt is Fmt.JR:
            return (_K_JR, instr.rs)
        if fmt is Fmt.JALR:
            return (_K_JALR, instr.rd, instr.rs)
        if fmt is Fmt.EXT:
            ext = self.ext_defs.get(instr.conf if instr.conf is not None else -1)
            if ext is None:
                raise SimulationError(
                    f"instr {index}: ext references unknown conf {instr.conf}"
                )
            return (_K_EXT, ext, instr.rd, instr.rs, instr.rt or 0)
        if op is Opcode.HALT:
            return (_K_HALT,)
        return (_K_NOP,)

    # ------------------------------------------------------------------

    def run(
        self,
        max_steps: int = 50_000_000,
        collect_trace: bool = False,
        profile: bool = False,
        entry_label: str = "main",
    ) -> ExecutionResult:
        """Execute until ``halt`` (or ``max_steps``; then SimulationError).

        With ``collect_trace`` the result carries a :class:`DynTrace`; with
        ``profile`` it carries per-static-instruction execution counts and
        the bitwidth profile.
        """
        rec = get_recorder()
        if not rec.enabled:
            return self._execute(max_steps, collect_trace, profile, entry_label)
        with rec.span(
            "sim.functional", program=self.program.name,
            trace=collect_trace, profile=profile,
        ) as attrs:
            result = self._execute(max_steps, collect_trace, profile, entry_label)
            attrs["steps"] = result.steps
        rec.counter("sim.functional.runs", program=self.program.name).inc()
        rec.counter("sim.functional.steps", program=self.program.name).inc(
            result.steps
        )
        return result

    def _use_fast_path(self) -> bool:
        """The block-compiled path runs everything (profiling runs use a
        profiling block variant) except explicitly forced reference
        runs."""
        if self.compile_blocks is not None:
            return self.compile_blocks
        return os.environ.get("REPRO_SIM_REFERENCE", "") not in ("1", "true")

    def _execute(
        self,
        max_steps: int,
        collect_trace: bool,
        profile: bool,
        entry_label: str,
    ) -> ExecutionResult:
        if self._use_fast_path():
            from repro.sim.compile import run_compiled

            return run_compiled(
                self, max_steps, collect_trace, entry_label, profile
            )
        return self._run(max_steps, collect_trace, profile, entry_label)

    def _run(
        self,
        max_steps: int,
        collect_trace: bool,
        profile: bool,
        entry_label: str,
    ) -> ExecutionResult:
        program = self.program
        n = len(program.text)
        pc = program.labels.get(entry_label, 0)
        regs = [0] * 32
        regs[29] = STACK_TOP  # $sp
        mem = self.memory
        decoded = self._decoded
        text = program.text

        trace = DynTrace() if collect_trace else None
        counts = [0] * n if profile else None
        widths = BitwidthProfile.empty(n) if profile else None

        steps = 0
        halted = False
        while steps < max_steps:
            if not 0 <= pc < n:
                raise SimulationError(f"PC out of text segment: index {pc}")
            d = decoded[pc]
            kind = d[0]
            steps += 1
            cur = pc
            pc += 1
            addr = -1

            if kind == _K_ALU_REG:
                _, fn, dst, a, b = d
                va, vb = regs[a], regs[b]
                value = fn(va, vb)
                if dst:
                    regs[dst] = value
                if profile:
                    w = effective_width(va)
                    w2 = effective_width(vb)
                    if w2 > w:
                        w = w2
                    if w > widths.max_operand_width[cur]:
                        widths.max_operand_width[cur] = w
                    rw = effective_width(value)
                    if rw > widths.max_result_width[cur]:
                        widths.max_result_width[cur] = rw
            elif kind == _K_ALU_IMM:
                _, fn, dst, a, imm = d
                va = regs[a]
                value = fn(va, imm)
                if dst:
                    regs[dst] = value
                if profile:
                    w = effective_width(va)
                    w2 = effective_width(imm)
                    if w2 > w:
                        w = w2
                    if w > widths.max_operand_width[cur]:
                        widths.max_operand_width[cur] = w
                    rw = effective_width(value)
                    if rw > widths.max_result_width[cur]:
                        widths.max_result_width[cur] = rw
            elif kind == _K_LOAD:
                _, size, signed, rt, rs, off = d
                addr = to_u32(regs[rs] + off)
                if size == 4:
                    value = mem.read_word(addr)
                elif size == 2:
                    value = mem.read_half(addr)
                    if signed and value & 0x8000:
                        value |= 0xFFFF_0000
                else:
                    value = mem.read_byte(addr)
                    if signed and value & 0x80:
                        value |= 0xFFFF_FF00
                if rt:
                    regs[rt] = value
            elif kind == _K_STORE:
                _, size, rt, rs, off = d
                addr = to_u32(regs[rs] + off)
                value = regs[rt]
                if size == 4:
                    mem.write_word(addr, value)
                elif size == 2:
                    mem.write_half(addr, value)
                else:
                    mem.write_byte(addr, value)
            elif kind == _K_BRANCH:
                _, cond, rs, rt, target = d
                va = regs[rs]
                if cond == 0:
                    taken = va == regs[rt]
                elif cond == 1:
                    taken = va != regs[rt]
                else:
                    sa = to_s32(va)
                    if cond == 2:
                        taken = sa <= 0
                    elif cond == 3:
                        taken = sa > 0
                    elif cond == 4:
                        taken = sa < 0
                    else:
                        taken = sa >= 0
                if taken:
                    pc = target
            elif kind == _K_EXT:
                _, ext, dst, rs, rt = d
                va, vb = regs[rs], regs[rt]
                value = ext.evaluate(va, vb)
                if dst:
                    regs[dst] = value
                if profile:
                    w = max(effective_width(va), effective_width(vb))
                    if w > widths.max_operand_width[cur]:
                        widths.max_operand_width[cur] = w
            elif kind == _K_LUI:
                _, value, dst = d
                if dst:
                    regs[dst] = value
            elif kind == _K_J:
                pc = d[1]
            elif kind == _K_JAL:
                regs[31] = TEXT_BASE + 4 * pc
                pc = d[1]
            elif kind == _K_JR:
                pc = program.index_of_pc(regs[d[1]])
            elif kind == _K_JALR:
                _, rd, rs = d
                ret = TEXT_BASE + 4 * pc
                pc = program.index_of_pc(regs[rs])
                if rd:
                    regs[rd] = ret
            elif kind == _K_HALT:
                halted = True
                if trace is not None:
                    trace.append(cur, -1)
                if counts is not None:
                    counts[cur] += 1
                break
            # _K_NOP: nothing

            if trace is not None:
                trace.append(cur, addr)
            if counts is not None:
                counts[cur] += 1

        if not halted and steps >= max_steps:
            raise SimulationError(f"program did not halt within {max_steps} steps")

        return ExecutionResult(
            steps=steps,
            halted=halted,
            regs=regs,
            memory=mem,
            trace=trace,
            exec_counts=counts,
            bitwidths=widths,
            program=program,
        )

    # ------------------------------------------------------------------

    def _step_one(
        self,
        pc: int,
        regs: list[int],
        trace: DynTrace | None,
        counts: list[int] | None = None,
        widths: BitwidthProfile | None = None,
    ) -> int:
        """Execute exactly one instruction with reference semantics.

        This is the block-compiled runner's escape hatch (``ext``
        instructions, dynamic jumps into the middle of a block, the last
        instructions of a near-exhausted step budget). Returns the next
        static index, or -1 if this instruction was ``halt``. Profiling
        runs pass ``counts``/``widths`` so fallback steps keep the same
        profile bookkeeping as the reference loop.
        """
        if not 0 <= pc < len(self._decoded):
            raise SimulationError(f"PC out of text segment: index {pc}")
        d = self._decoded[pc]
        kind = d[0]
        mem = self.memory
        cur = pc
        pc += 1
        addr = -1

        if kind == _K_ALU_REG:
            _, fn, dst, a, b = d
            va, vb = regs[a], regs[b]
            value = fn(va, vb)
            if dst:
                regs[dst] = value
            if widths is not None:
                w = effective_width(va)
                w2 = effective_width(vb)
                if w2 > w:
                    w = w2
                if w > widths.max_operand_width[cur]:
                    widths.max_operand_width[cur] = w
                rw = effective_width(value)
                if rw > widths.max_result_width[cur]:
                    widths.max_result_width[cur] = rw
        elif kind == _K_ALU_IMM:
            _, fn, dst, a, imm = d
            va = regs[a]
            value = fn(va, imm)
            if dst:
                regs[dst] = value
            if widths is not None:
                w = effective_width(va)
                w2 = effective_width(imm)
                if w2 > w:
                    w = w2
                if w > widths.max_operand_width[cur]:
                    widths.max_operand_width[cur] = w
                rw = effective_width(value)
                if rw > widths.max_result_width[cur]:
                    widths.max_result_width[cur] = rw
        elif kind == _K_LOAD:
            _, size, signed, rt, rs, off = d
            addr = to_u32(regs[rs] + off)
            if size == 4:
                value = mem.read_word(addr)
            elif size == 2:
                value = mem.read_half(addr)
                if signed and value & 0x8000:
                    value |= 0xFFFF_0000
            else:
                value = mem.read_byte(addr)
                if signed and value & 0x80:
                    value |= 0xFFFF_FF00
            if rt:
                regs[rt] = value
        elif kind == _K_STORE:
            _, size, rt, rs, off = d
            addr = to_u32(regs[rs] + off)
            value = regs[rt]
            if size == 4:
                mem.write_word(addr, value)
            elif size == 2:
                mem.write_half(addr, value)
            else:
                mem.write_byte(addr, value)
        elif kind == _K_BRANCH:
            _, cond, rs, rt, target = d
            va = regs[rs]
            if cond == 0:
                taken = va == regs[rt]
            elif cond == 1:
                taken = va != regs[rt]
            else:
                sa = to_s32(va)
                if cond == 2:
                    taken = sa <= 0
                elif cond == 3:
                    taken = sa > 0
                elif cond == 4:
                    taken = sa < 0
                else:
                    taken = sa >= 0
            if taken:
                pc = target
        elif kind == _K_EXT:
            _, ext, dst, rs, rt = d
            va, vb = regs[rs], regs[rt]
            value = ext.evaluate(va, vb)
            if dst:
                regs[dst] = value
            if widths is not None:
                w = max(effective_width(va), effective_width(vb))
                if w > widths.max_operand_width[cur]:
                    widths.max_operand_width[cur] = w
        elif kind == _K_LUI:
            _, value, dst = d
            if dst:
                regs[dst] = value
        elif kind == _K_J:
            pc = d[1]
        elif kind == _K_JAL:
            regs[31] = TEXT_BASE + 4 * pc
            pc = d[1]
        elif kind == _K_JR:
            pc = self.program.index_of_pc(regs[d[1]])
        elif kind == _K_JALR:
            _, rd, rs = d
            ret = TEXT_BASE + 4 * pc
            pc = self.program.index_of_pc(regs[rs])
            if rd:
                regs[rd] = ret
        elif kind == _K_HALT:
            pc = -1
        # _K_NOP: nothing

        if trace is not None:
            trace.append(cur, addr)
        if counts is not None:
            counts[cur] += 1
        return pc


def run_program(
    program: Program,
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    **kwargs,
) -> ExecutionResult:
    """Convenience one-shot execution."""
    return FunctionalSimulator(program, ext_defs=ext_defs).run(**kwargs)
