"""Pipeline-timeline rendering: a text Gantt chart of recorded
instructions through fetch / dispatch / issue / execute / commit.

Stage letters: ``F`` fetch, ``D`` dispatch (rename + RUU insert),
``I`` issue (operands ready, FU granted), ``=`` executing, ``X``
writeback/complete, ``C`` commit. Dots mark waiting-in-machine cycles
(in the RUU between dispatch and issue, or completed awaiting in-order
commit).

Note: the model has a decoupled front end with an idealised fetch
queue, so ``F`` can run arbitrarily far ahead of ``D`` when dispatch is
window-limited; timing is governed by dispatch onward.

Usage::

    stats = OoOSimulator(program, cfg, ext_defs).simulate(
        trace, record_window=(1000, 1024))
    print(render_timeline(stats.timeline, program))
"""

from __future__ import annotations

from repro.program.program import Program

_MAX_WIDTH = 100


def render_timeline(
    timeline: list[tuple[int, int, int, int, int, int]],
    program: Program,
) -> str:
    """Render recorded pipeline events as a text chart."""
    if not timeline:
        return "(empty timeline)"
    base = min(entry[1] for entry in timeline)
    last = max(entry[5] for entry in timeline)
    width = last - base + 1
    clipped = width > _MAX_WIDTH
    width = min(width, _MAX_WIDTH)

    listing_w = max(
        len(program.text[entry[0]].render()) for entry in timeline
    )
    listing_w = min(listing_w, 34)

    header = (
        f"{'':>6} {'instruction':<{listing_w}} "
        f"cycles {base}..{base + width - 1}"
        + (" (clipped)" if clipped else "")
    )
    lines = [header]
    for si, fetch, dispatch, issue, complete, commit in timeline:
        row = [" "] * width

        def put(cycle: int, ch: str) -> None:
            pos = cycle - base
            if 0 <= pos < width:
                # don't overwrite a stage letter with a filler dot
                if ch == "." and row[pos] != " ":
                    return
                row[pos] = ch

        for cyc in range(dispatch + 1, issue):
            put(cyc, ".")
        for cyc in range(complete + 1, commit):
            put(cyc, ".")
        for cyc in range(issue + 1, complete):
            put(cyc, "=")
        put(fetch, "F")
        put(dispatch, "D")
        put(issue, "I")
        put(complete, "X")
        put(commit, "C")
        text = program.text[si].render()[:listing_w]
        lines.append(f"{si:>6} {text:<{listing_w}} {''.join(row)}")
    return "\n".join(lines)


def timeline_summary(
    timeline: list[tuple[int, int, int, int, int, int]]
) -> dict[str, float]:
    """Average per-stage delays over the recorded window."""
    if not timeline:
        return {}
    n = len(timeline)
    return {
        "fetch_to_dispatch": sum(d - f for _, f, d, _, _, _ in timeline) / n,
        "dispatch_to_issue": sum(i - d for _, _, d, i, _, _ in timeline) / n,
        "issue_to_complete": sum(x - i for _, _, _, i, x, _ in timeline) / n,
        "complete_to_commit": sum(c - x for _, _, _, _, x, c in timeline) / n,
    }
