"""The programmable functional unit (PFU) bank.

Implements §2.2's mechanism: each PFU holds an ID tag naming the extended
instruction it is currently configured for. At decode/dispatch the ``Conf``
field of an ``ext`` instruction is compared against the tags; a match is
"akin to a cache hit" and the instruction dispatches normally. On a miss,
configuration bits are loaded into the LRU PFU before the instruction can
issue, paying the reconfiguration latency. A PFU that still has older
in-flight operations issues them before being reprogrammed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.lru import LRUTracker


@dataclass
class _Slot:
    tag: int | None = None
    config_ready: int = 0    # cycle at which the loaded config is usable
    last_issue: int = -1     # last cycle an op issued on this PFU


class PFUBank:
    """Tracks PFU configuration state during a timing simulation.

    ``n_pfus=None`` models the unlimited-PFU idealisation: every distinct
    configuration gets its own PFU; only the cold configuration load (if
    ``reconfig_latency > 0``) is paid.
    """

    def __init__(
        self,
        n_pfus: int | None,
        reconfig_latency: int,
        latency_by_conf: dict[int, int] | None = None,
    ) -> None:
        """``latency_by_conf`` overrides the flat latency per configuration
        (the §6 bitstream-proportional model)."""
        self.n_pfus = n_pfus
        self.reconfig_latency = reconfig_latency
        self.latency_by_conf = latency_by_conf or {}
        self.hits = 0
        self.misses = 0
        self.reconfig_cycles = 0
        if n_pfus is None:
            self._ready_by_conf: dict[int, int] = {}
        else:
            self._slots = [_Slot() for _ in range(n_pfus)]
            self._slot_of: dict[int, int] = {}   # conf -> slot index
            self._lru: LRUTracker[int] = LRUTracker()  # tracks conf ids

    # ------------------------------------------------------------------

    def acquire(self, conf: int, cycle: int) -> tuple[int, int | None]:
        """Dispatch-time tag check for an ``ext`` with configuration ``conf``.

        Returns ``(config_ready_cycle, slot_index)``; the instruction may
        not issue before ``config_ready_cycle``. ``slot_index`` is ``None``
        in unlimited mode (no structural hazard modelled).
        """
        latency = self.latency_by_conf.get(conf, self.reconfig_latency)
        if self.n_pfus is None:
            ready = self._ready_by_conf.get(conf)
            if ready is None:
                self.misses += 1
                self.reconfig_cycles += latency
                ready = cycle + latency
                self._ready_by_conf[conf] = ready
            else:
                self.hits += 1
            return ready, None

        slot_idx = self._slot_of.get(conf)
        if slot_idx is not None:
            self.hits += 1
            self._lru.touch(conf)
            return self._slots[slot_idx].config_ready, slot_idx

        self.misses += 1
        self.reconfig_cycles += latency
        slot_idx = self._pick_victim()
        slot = self._slots[slot_idx]
        if slot.tag is not None:
            del self._slot_of[slot.tag]
            self._lru.evict(slot.tag)
        # Reconfiguration cannot start while older ops still need the old
        # configuration; they have all issued by slot.last_issue.
        start = max(cycle, slot.last_issue + 1)
        slot.tag = conf
        slot.config_ready = start + latency
        self._slot_of[conf] = slot_idx
        self._lru.touch(conf)
        return slot.config_ready, slot_idx

    def latency_for(self, conf: int) -> int:
        """Configuration-load latency charged for ``conf``."""
        return self.latency_by_conf.get(conf, self.reconfig_latency)

    def note_issue(self, slot_idx: int | None, cycle: int) -> None:
        """Record that an ext op issued on ``slot_idx`` at ``cycle``."""
        if self.n_pfus is None or slot_idx is None:
            return
        slot = self._slots[slot_idx]
        if cycle > slot.last_issue:
            slot.last_issue = cycle

    def _pick_victim(self) -> int:
        for idx, slot in enumerate(self._slots):
            if slot.tag is None:
                return idx
        victim_conf = self._lru.victim()
        return self._slot_of[victim_conf]

    # ------------------------------------------------------------------

    def resident_configs(self) -> set[int]:
        """Configurations currently loaded (observability for tests)."""
        if self.n_pfus is None:
            return set(self._ready_by_conf)
        return set(self._slot_of)
