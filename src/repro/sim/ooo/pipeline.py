"""The trace-driven out-of-order pipeline model.

For each dynamic instruction the model computes fetch, dispatch, issue,
completion and commit cycles subject to:

- **fetch**: ``fetch_width`` per cycle, stalling on I-cache misses, and
  breaking the fetch group after a taken control transfer (perfect branch
  prediction: no misfetch penalty, but no same-cycle fetch across a taken
  branch);
- **dispatch**: in-order, ``decode_width`` per cycle, requires a free RUU
  entry (entries are freed at commit, window = ``ruu_size``); ``ext``
  instructions perform the PFU tag check here (§2.2) and trigger
  reconfiguration on a miss;
- **issue**: out-of-order wake-up when all source operands are ready,
  bounded by ``issue_width`` and functional-unit availability (ALUs,
  pipelined multiplier, unpipelined divider, memory ports, PFUs — one op
  per PFU per cycle); loads also wait for older stores to the same word
  (perfect memory disambiguation with store-to-load forwarding);
- **complete**: issue + latency (loads consult the cache hierarchy);
  dependents wake via full bypassing;
- **commit**: in-order, ``commit_width`` per cycle.

The simulated time is the commit cycle of the last instruction.
"""

from __future__ import annotations

import os
import warnings
from contextlib import nullcontext
from math import ceil
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import SimulationError
from repro.isa.encoding import TEXT_BASE
from repro.obs import get_recorder
from repro.isa.opcodes import OpClass, Opcode
from repro.program.program import Program
from repro.sim.cache.hierarchy import MemoryHierarchy
from repro.sim.ooo.branchpred import BimodalPredictor, is_conditional
from repro.sim.ooo.config import MachineConfig
from repro.sim.ooo.pfu import PFUBank
from repro.sim.ooo.stats import SimStats
from repro.sim.trace import DynTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.extdef import ExtInstDef

# internal instruction classes
_C_ALU = 0
_C_MUL = 1
_C_DIV = 2
_C_LOAD = 3
_C_STORE = 4
_C_CTRL = 5
_C_NOP = 6
_C_EXT = 7

_CLASS_OF = {
    OpClass.ALU: _C_ALU,
    OpClass.MUL: _C_MUL,
    OpClass.DIV: _C_DIV,
    OpClass.LOAD: _C_LOAD,
    OpClass.STORE: _C_STORE,
    OpClass.BRANCH: _C_CTRL,
    OpClass.JUMP: _C_CTRL,
    OpClass.NOP: _C_NOP,
    OpClass.HALT: _C_NOP,
    OpClass.EXT: _C_EXT,
}

_CLASS_NAMES = ["alu", "mul", "div", "load", "store", "ctrl", "nop", "ext"]

#: Issue-resource groups for the fast path: which per-cycle counter an
#: instruction class contends on. ALU ops, control transfers, and NOPs
#: share the integer ALUs; the divider shares the multiplier; loads and
#: stores share the cache ports; ext ops contend per PFU slot.
_GRP_ALU, _GRP_MUL, _GRP_DIV, _GRP_MEM, _GRP_EXT = range(5)
_GRP_OF = {
    _C_ALU: _GRP_ALU,
    _C_MUL: _GRP_MUL,
    _C_DIV: _GRP_DIV,
    _C_LOAD: _GRP_MEM,
    _C_STORE: _GRP_MEM,
    _C_CTRL: _GRP_ALU,
    _C_NOP: _GRP_ALU,
    _C_EXT: _GRP_EXT,
}

#: Ring-buffer horizon cap for the fast path (slots, power of two). A run
#: whose issue cycle ever drifts this far past dispatch falls back to the
#: reference loop rather than growing the rings further.
_MAX_HORIZON = 1 << 20

#: Attribute under which the dense timing pre-pass caches its per-trace
#: arrays on the DynTrace instance (keyed by hierarchy config).
_DENSE_ATTR = "_dense_timing_cache"

_REPLAY_ATTR = "_replay_tab_cache"

_FETCH_ATTR = "_fetch_cycle_cache"

_FAST_LOOP_CACHE: dict[tuple, object] = {}


def _fast_loop_source(
    has_mul: bool, has_div: bool, has_mem: bool, has_ext: bool,
    obs_live: bool, record: bool, shard: bool = False,
) -> str:
    """Source of a replay loop specialized to one program/run shape.

    The loop is the reference pipeline model with per-cycle resource
    dicts replaced by stamped ring buffers and the fetch stage replaced
    by the precomputed ``fcyc`` array (fetch has no feedback from the
    core in this model); specialization drops the branches for
    instruction classes the program does not contain and for disabled
    observability/timeline recording, so the common ALU-heavy iteration
    executes a minimal straight-line body. Programs whose classes all
    contend on the integer ALUs additionally fuse the issue-width and
    ALU rings into one (their per-cycle counts are always equal). The
    numeric class literals below are the _C_* constants.

    ``shard=True`` generates the slice-replay variant used by
    :mod:`repro.sim.shard`: the loop takes a ``seed`` tuple of core
    state (dispatch/commit bookkeeping, commit ring, register and store
    readiness, divider busy cycle) instead of starting cold, and
    returns that state tuple alongside the stats so a slice can be run
    as warmup segment + kept segment with exact state continuity. The
    serial specializations are byte-for-byte unchanged.
    """
    O = obs_live
    multi = has_mul or has_div or has_mem or has_ext
    lines: list[str] = []

    def a(level: int, text: str) -> None:
        lines.append("    " * level + text)

    def issue_loop(level: int, us: str, uc: str, limit: str) -> None:
        """Unit + issue-width contention search for one resource group.
        The issued-count update is folded into the search's final
        iteration so the slot index is computed once per probe."""
        a(level, "while True:")
        a(level + 1, "i = t & mask")
        a(level + 1, "if iss_s[i] == t:")
        a(level + 2, "if iss_c[i] >= issue_width:")
        a(level + 3, "t += 1")
        a(level + 3, "continue")
        a(level + 2, f"if {us}[i] == t:")
        a(level + 3, f"if {uc}[i] >= {limit}:")
        a(level + 4, "t += 1")
        a(level + 4, "continue")
        a(level + 3, f"{uc}[i] += 1")
        a(level + 2, "else:")
        a(level + 3, f"{us}[i] = t")
        a(level + 3, f"{uc}[i] = 1")
        a(level + 2, "iss_c[i] += 1")
        a(level + 1, "else:")
        a(level + 2, f"if {us}[i] == t:")
        a(level + 3, f"if {uc}[i] >= {limit}:")
        a(level + 4, "t += 1")
        a(level + 4, "continue")
        a(level + 3, f"{uc}[i] += 1")
        a(level + 2, "else:")
        a(level + 3, f"{us}[i] = t")
        a(level + 3, f"{uc}[i] = 1")
        if O:
            a(level + 2, "if iss_c[i]:")
            a(level + 3, "issue_widths.append(iss_c[i])")
        a(level + 2, "iss_s[i] = t")
        a(level + 2, "iss_c[i] = 1")
        a(level + 1, "break")

    def issued_update(level: int) -> None:
        a(level, "if iss_s[i] == t:")
        a(level + 1, "iss_c[i] += 1")
        a(level, "else:")
        if O:
            a(level + 1, "if iss_c[i]:")
            a(level + 2, "issue_widths.append(iss_c[i])")
        a(level + 1, "iss_s[i] = t")
        a(level + 1, "iss_c[i] = 1")

    a(0, "def replay(per_k, indices, addrs, fcyc, mlat, conf_tab,")
    a(0, "           decode_width, issue_width, commit_width,")
    a(0, "           ruu_size, n_ialu, n_imult, n_memports, horizon, bank,")
    a(0, "           iss_s, iss_c, alu_s, alu_c, mul_s, mul_c, mem_s, mem_c,")
    if shard:
        a(0, "           pfu_s, rec_lo, rec_hi, timeline, seed):")
    else:
        a(0, "           pfu_s, rec_lo, rec_hi, timeline):")
    a(1, "mask = horizon - 1")
    if shard:
        a(1, "(disp_cycle, disp_n, commit_ring, reg_ready, store_ready,")
        a(1, " div_free, commit_cycle, commit_n) = seed")
    else:
        a(1, "disp_cycle = 1")
        a(1, "disp_n = 0")
        a(1, "commit_ring = [0] * ruu_size")
        if has_div:
            a(1, "div_free = 0")
        a(1, "reg_ready = [0] * 32")
        if has_mem:
            a(1, "store_ready = {}")
        a(1, "commit_cycle = 1")
        a(1, "commit_n = 0")
    if not multi:
        a(1, "lim = issue_width if issue_width < n_ialu else n_ialu")
    if O:
        a(1, "st_disp_ruu = st_disp_width = 0")
        a(1, "st_issue_operands = st_issue_store_dep = 0")
        a(1, "st_issue_pfu = st_issue_div = st_issue_struct = 0")
        a(1, "st_commit_width = 0")
        a(1, "issue_widths = []")
        a(1, "reconfigs = []")
    if multi:
        a(1, "for k, (cls, grp, s1, s2, dst, lat) in enumerate(per_k):")
    else:
        a(1, "for k, (s1, s2, dst, lat) in enumerate(per_k):")
    # -- dispatch --
    a(2, "d = fcyc[k] + 1")
    if O:
        # clamp before the RUU check so stall cycles attribute to the
        # RUU exactly as in the reference loop
        a(2, "if d < disp_cycle:")
        a(3, "d = disp_cycle")
    a(2, "kslot = k % ruu_size")
    a(2, "freed = commit_ring[kslot] + 1")
    a(2, "if freed > d:")
    if O:
        a(3, "st_disp_ruu += freed - d")
    a(3, "d = freed")
    a(2, "if d > disp_cycle:")
    a(3, "disp_cycle = d")
    a(3, "disp_n = 1")
    a(2, "elif disp_n >= decode_width:")
    if O:
        a(3, "st_disp_width += 1")
    a(3, "d = disp_cycle + 1")
    a(3, "disp_cycle = d")
    a(3, "disp_n = 1")
    a(2, "else:")
    a(3, "d = disp_cycle")
    a(3, "disp_n += 1")
    if has_ext and O:
        # the non-obs variant acquires inside its ext issue branch; the
        # call only consumes ``d``, so deferring it past the operand
        # waits is order-preserving
        a(2, "if cls == 7:")
        a(3, "conf = conf_tab[indices[k]]")
        a(3, "misses_before = bank.misses")
        a(3, "config_ready, pfu_slot = bank.acquire(conf, d)")
        a(3, "if bank.misses != misses_before:")
        a(4, "rl = bank.latency_for(conf)")
        a(4, "reconfigs.append("
             "(conf, pfu_slot, config_ready - rl, config_ready))")
    # -- issue: operand/dependence waits --
    a(2, "t = d + 1")
    a(2, "if s1:")
    a(3, "rr = reg_ready[s1]")
    a(3, "if rr > t:")
    a(4, "t = rr")
    a(3, "if s2:")
    a(4, "rr = reg_ready[s2]")
    a(4, "if rr > t:")
    a(5, "t = rr")
    if O:
        a(2, "if t > d + 1:")
        a(3, "st_issue_operands += t - (d + 1)")
        if has_mem:
            a(2, "if cls == 3:")
            a(3, "dep = store_ready.get(addrs[k] >> 2, 0)")
            a(3, "if dep > t:")
            a(4, "st_issue_store_dep += dep - t")
            a(4, "t = dep")
        if has_ext:
            a(2, "if cls == 7 and config_ready > t:")
            a(3, "st_issue_pfu += config_ready - t")
            a(3, "t = config_ready")
        if has_div:
            a(2, "if cls == 2 and div_free > t:")
            a(3, "st_issue_div += div_free - t")
            a(3, "t = div_free")
        a(2, "t_pre = t")
    # -- issue: structural search (and, for the non-obs multi-group
    # variant, the class-specific waits and completion, fused into the
    # per-group branch so ALU iterations skip every dead class check) --
    def horizon_check(level: int) -> None:
        a(level, "if t - d >= horizon:")
        a(level + 1, "return None")

    def div_search(level: int) -> None:
        a(level, "while True:")
        a(level + 1, "i = t & mask")
        a(level + 1, "if iss_s[i] == t and iss_c[i] >= issue_width:")
        a(level + 2, "t += 1")
        a(level + 2, "continue")
        a(level + 1, "if mul_s[i] == t:")
        a(level + 2, "if mul_c[i] >= n_imult:")
        a(level + 3, "t += 1")
        a(level + 3, "continue")
        a(level + 2, "mul_c[i] += 1")
        a(level + 1, "else:")
        a(level + 2, "mul_s[i] = t")
        a(level + 2, "mul_c[i] = 1")
        a(level + 1, "div_free = t + lat")
        issued_update(level + 1)
        a(level + 1, "break")

    def ext_search(level: int) -> None:
        a(level, "ps = pfu_s[pfu_slot] if pfu_slot is not None"
                 " else None")
        a(level, "while True:")
        a(level + 1, "i = t & mask")
        a(level + 1, "if iss_s[i] == t and iss_c[i] >= issue_width:")
        a(level + 2, "t += 1")
        a(level + 2, "continue")
        a(level + 1, "if ps is not None:")
        a(level + 2, "if ps[i] == t:")
        a(level + 3, "t += 1")
        a(level + 3, "continue")
        a(level + 2, "ps[i] = t")
        issued_update(level + 1)
        a(level + 1, "break")
        a(level, "bank.note_issue(pfu_slot, t)")

    if multi:
        branches: list[tuple[str, object]] = [
            ("0", ("alu_s", "alu_c", "n_ialu"))
        ]
        if has_mem:
            branches.append(("3", ("mem_s", "mem_c", "n_memports")))
        if has_mul:
            branches.append(("1", ("mul_s", "mul_c", "n_imult")))
        if has_div:
            branches.append(("2", "div"))
        if has_ext:
            branches.append(("4", "ext"))

    if not multi:
        # single resource group: the issue-width and ALU rings always
        # carry equal counts, so one ring with the tighter limit serves
        a(2, "while True:")
        a(3, "i = t & mask")
        a(3, "if iss_s[i] == t:")
        a(4, "if iss_c[i] >= lim:")
        a(5, "t += 1")
        a(5, "continue")
        a(4, "iss_c[i] += 1")
        a(3, "else:")
        if O:
            a(4, "if iss_c[i]:")
            a(5, "issue_widths.append(iss_c[i])")
        a(4, "iss_s[i] = t")
        a(4, "iss_c[i] = 1")
        a(3, "break")
        horizon_check(2)
        if O:
            a(2, "if t > t_pre:")
            a(3, "st_issue_struct += t - t_pre")
        a(2, "complete = t + lat")
    elif O:
        for bi, (grp_lit, spec) in enumerate(branches):
            if bi == 0:
                a(2, f"if grp == {grp_lit}:")
            elif bi < len(branches) - 1:
                a(2, f"elif grp == {grp_lit}:")
            else:
                a(2, "else:")
            body = 3
            if spec == "div":
                div_search(body)
            elif spec == "ext":
                ext_search(body)
            else:
                us, uc, limit = spec
                issue_loop(body, us, uc, limit)
        horizon_check(2)
        a(2, "if t > t_pre:")
        a(3, "st_issue_struct += t - t_pre")
        # -- execute/complete --
        if has_mem:
            a(2, "if cls == 3:")
            a(3, "complete = t + mlat[k]")
            a(2, "elif cls == 4:")
            a(3, "complete = t + 1")
            a(3, "store_ready[addrs[k] >> 2] = complete")
            a(2, "else:")
            a(3, "complete = t + lat")
        else:
            a(2, "complete = t + lat")
    else:
        for bi, (grp_lit, spec) in enumerate(branches):
            if bi == 0:
                a(2, f"if grp == {grp_lit}:")
            elif bi < len(branches) - 1:
                a(2, f"elif grp == {grp_lit}:")
            else:
                a(2, "else:")
            body = 3
            if spec == "div":
                a(body, "if div_free > t:")
                a(body + 1, "t = div_free")
                div_search(body)
                horizon_check(body)
                a(body, "complete = t + lat")
            elif spec == "ext":
                a(body, "conf = conf_tab[indices[k]]")
                a(body, "config_ready, pfu_slot = bank.acquire(conf, d)")
                a(body, "if config_ready > t:")
                a(body + 1, "t = config_ready")
                ext_search(body)
                horizon_check(body)
                a(body, "complete = t + lat")
            elif grp_lit == "3":
                a(body, "if cls == 3:")
                a(body + 1, "dep = store_ready.get(addrs[k] >> 2, 0)")
                a(body + 1, "if dep > t:")
                a(body + 2, "t = dep")
                issue_loop(body, "mem_s", "mem_c", "n_memports")
                horizon_check(body)
                a(body, "if cls == 3:")
                a(body + 1, "complete = t + mlat[k]")
                a(body, "else:")
                a(body + 1, "complete = t + 1")
                a(body + 1, "store_ready[addrs[k] >> 2] = complete")
            else:
                us, uc, limit = spec
                issue_loop(body, us, uc, limit)
                horizon_check(body)
                a(body, "complete = t + lat")
    a(2, "if dst:")
    a(3, "reg_ready[dst] = complete")
    # -- commit --
    a(2, "c = complete + 1")
    a(2, "if c > commit_cycle:")
    a(3, "commit_cycle = c")
    a(3, "commit_n = 1")
    a(2, "elif commit_n >= commit_width:")
    if O:
        a(3, "st_commit_width += 1")
    a(3, "c = commit_cycle + 1")
    a(3, "commit_cycle = c")
    a(3, "commit_n = 1")
    a(2, "else:")
    a(3, "c = commit_cycle")
    a(3, "commit_n += 1")
    a(2, "commit_ring[kslot] = c")
    if record:
        a(2, "if rec_lo <= k < rec_hi:")
        a(3, "timeline.append((indices[k], fcyc[k], d, t, complete, c))")
    if shard:
        # export the core state for the next segment / boundary check;
        # the obs issue-width ring flush is left to the shard driver
        # (the ring keeps live entries that the next segment continues)
        a(1, "state = (disp_cycle, disp_n, commit_ring, reg_ready,")
        a(1, "         store_ready, div_free, commit_cycle, commit_n)")
        if O:
            a(1, "return (commit_cycle,")
            a(1, "        (st_disp_ruu, st_disp_width,")
            a(1, "         st_issue_operands, st_issue_store_dep,"
                 " st_issue_pfu,")
            a(1, "         st_issue_div, st_issue_struct, st_commit_width),")
            a(1, "        issue_widths, reconfigs, state)")
        else:
            a(1, "return (commit_cycle, None, None, None, state)")
    elif O:
        a(1, "issue_widths.extend(w for w in iss_c if w)")
        a(1, "return (commit_cycle,")
        a(1, "        (st_disp_ruu, st_disp_width,")
        a(1, "         st_issue_operands, st_issue_store_dep, st_issue_pfu,")
        a(1, "         st_issue_div, st_issue_struct, st_commit_width),")
        a(1, "        issue_widths, reconfigs)")
    else:
        a(1, "return (commit_cycle, None, None, None)")
    return "\n".join(lines) + "\n"


def _fast_loop(
    has_mul: bool, has_div: bool, has_mem: bool, has_ext: bool,
    obs_live: bool, record: bool, shard: bool = False,
):
    """Compile (and cache) the replay loop for one specialization."""
    key = (has_mul, has_div, has_mem, has_ext, obs_live, record, shard)
    fn = _FAST_LOOP_CACHE.get(key)
    if fn is None:
        namespace: dict = {}
        code = compile(
            _fast_loop_source(*key), f"<t1000-replay:{key}>", "exec"
        )
        exec(code, namespace)  # noqa: S102 - trusted, self-generated source
        fn = namespace["replay"]
        _FAST_LOOP_CACHE[key] = fn
    return fn


class OoOSimulator:
    """Timing simulator for one program (reusable across traces only by
    constructing a new instance — cache and PFU state are per-run)."""

    def __init__(
        self,
        program: Program,
        config: MachineConfig | None = None,
        ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    ) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.ext_defs = dict(ext_defs or {})
        # Pre-extract static per-instruction properties into flat tuples.
        self._cls: list[int] = []
        self._srcs: list[tuple[int, ...]] = []
        self._dst: list[int] = []
        self._lat: list[int] = []
        self._conf: list[int] = []
        self._ctrl_kind: list[int] = []   # 0 none, 1 cond, 2 call, 3 return
        ext_latency = self._ext_latencies()
        for instr in program.text:
            cls = _CLASS_OF[instr.op_class]
            self._cls.append(cls)
            self._srcs.append(tuple(r for r in instr.uses() if r != 0))
            defs = instr.defs()
            self._dst.append(defs[0] if defs and defs[0] != 0 else 0)
            if cls == _C_EXT:
                conf = instr.conf if instr.conf is not None else -1
                self._lat.append(ext_latency.get(conf, 1))
            else:
                self._lat.append(instr.info.latency)
            self._conf.append(instr.conf if instr.conf is not None else -1)
            if is_conditional(instr.op):
                self._ctrl_kind.append(1)
            elif instr.op in (Opcode.JAL, Opcode.JALR):
                self._ctrl_kind.append(2)
            elif instr.op is Opcode.JR:
                self._ctrl_kind.append(3)
            else:
                self._ctrl_kind.append(0)
        self._reconfig_by_conf = self._reconfig_latencies()
        self._ext_lat_sig = tuple(sorted(ext_latency.items()))
        self._present = frozenset(self._cls)
        # Flat per-static replay tuples for the fast path. $zero is
        # dropped from the sources (it is never written, so reads of it
        # never wait), which lets the replay loop nest the second
        # operand check under the first. Programs whose classes all
        # share the integer ALUs use a short tuple shape: their loop
        # specialization needs no class/group dispatch at all.
        self._single_group = {_GRP_OF[c] for c in self._present} <= {_GRP_ALU}
        rows = []
        for i, srcs in enumerate(self._srcs):
            nz = [r for r in srcs if r]
            s1 = nz[0] if nz else 0
            s2 = nz[1] if len(nz) > 1 else 0
            cls = self._cls[i]
            if self._single_group:
                rows.append((s1, s2, self._dst[i], self._lat[i]))
            else:
                rows.append(
                    (cls, _GRP_OF[cls], s1, s2, self._dst[i], self._lat[i])
                )
        self._static_tab = rows

    def _ext_latencies(self) -> dict[int, int]:
        """Per-configuration execution latency (§3.1 latency models)."""
        out: dict[int, int] = {}
        if self.config.ext_latency_model == "mapped" and self.ext_defs:
            from repro.hwcost import estimate_cost

            for conf, extdef in self.ext_defs.items():
                levels = estimate_cost(extdef).levels
                out[conf] = max(1, ceil(levels / self.config.lut_levels_per_cycle))
        else:
            for conf, extdef in self.ext_defs.items():
                out[conf] = getattr(extdef, "latency", 1)
        return out

    def _reconfig_latencies(self) -> dict[int, int]:
        """Per-configuration load latency (§6 bitstream model)."""
        if self.config.reconfig_model != "bitstream" or not self.ext_defs:
            return {}
        from repro.hwcost import config_bits, estimate_cost

        out: dict[int, int] = {}
        for conf, extdef in self.ext_defs.items():
            bits = config_bits(estimate_cost(extdef).luts)
            out[conf] = max(1, ceil(bits / self.config.config_bits_per_cycle))
        return out

    # ------------------------------------------------------------------

    def simulate(
        self,
        trace: DynTrace,
        record_window: tuple[int, int] | None = None,
    ) -> SimStats:
        """Replay ``trace`` through the pipeline; returns statistics.

        ``record_window=(start, end)`` additionally records the pipeline
        timeline — (static index, fetch, dispatch, issue, complete,
        commit) per dynamic instruction in ``[start, end)`` — into
        ``stats.timeline`` for visualisation (see
        :mod:`repro.sim.ooo.timeline`).

        When the process-wide observability recorder is enabled
        (:mod:`repro.obs`), the run additionally records per-stage stall
        cycles, PFU reconfiguration spans (in simulated cycles), an
        issue-width histogram, and cache traffic; disabled, the hooks
        cost one hoisted boolean check.
        """
        if len(trace) == 0:
            raise SimulationError("empty trace")
        rec = get_recorder()
        obs = rec if rec.enabled else None
        with (
            rec.span("sim.timing", program=self.program.name)
            if obs is not None else nullcontext()
        ) as obs_span:
            stats = self._simulate(trace, record_window, obs)
        if obs is not None:
            obs_span["instructions"] = stats.instructions
            obs_span["cycles"] = stats.cycles
        return stats

    def _simulate(
        self,
        trace: DynTrace,
        record_window: tuple[int, int] | None,
        obs,
    ) -> SimStats:
        """Inner loop dispatcher: the dense-window fast path when legal,
        else the reference loop. Both produce identical :class:`SimStats`
        (verified by differential tests); the fast path bounds the
        per-cycle resource bookkeeping to O(horizon) memory."""
        if self._fast_eligible():
            horizon = self._initial_horizon()
            while horizon <= _MAX_HORIZON:
                stats = self._simulate_fast(trace, record_window, obs, horizon)
                if stats is not None:
                    return stats
                horizon *= 8
        return self._simulate_reference(trace, record_window, obs)

    def _fast_eligible(self) -> bool:
        """The fast path requires the paper's perfect branch prediction:
        with a bimodal predictor, fetch redirects change the I-cache
        access sequence, so cache latencies cannot be precomputed from
        the trace alone."""
        if not self.config.sim_fast_path:
            return False
        if self.config.branch_predictor != "perfect":
            return False
        return os.environ.get("REPRO_SIM_REFERENCE", "") not in ("1", "true")

    def _initial_horizon(self) -> int:
        """Ring-buffer size: a power of two safely above the largest
        plausible issue-past-dispatch drift (RUU window worth of memory
        stalls, plus one reconfiguration). Exceeding it is detected and
        retried with larger rings, so this is a fast-start heuristic,
        not a correctness bound."""
        cfg = self.config
        h = cfg.hierarchy
        mem_worst = (
            h.dtlb.miss_penalty + h.dl1.hit_latency
            + h.ul2.hit_latency + h.mem_latency
        )
        ifetch_worst = (
            h.itlb.miss_penalty + h.il1.hit_latency
            + h.ul2.hit_latency + h.mem_latency
        )
        lat_worst = max(self._lat, default=1)
        reconfig_worst = cfg.reconfig_latency
        if self._reconfig_by_conf:
            reconfig_worst = max(
                reconfig_worst, *self._reconfig_by_conf.values()
            )
        span = (
            cfg.ruu_size * max(mem_worst, lat_worst, 2)
            + reconfig_worst + ifetch_worst + 64
        )
        horizon = 1024
        while horizon < span:
            horizon *= 2
        return min(horizon, _MAX_HORIZON)

    def _dense_pass(self, trace: DynTrace):
        """Precompute the trace's cache/TLB interactions.

        With perfect branch prediction the hierarchy's access sequence is
        a pure function of the trace (fetch line transitions and
        load/store addresses in program order), independent of the core's
        timing parameters — so one pass yields, for every dynamic
        instruction, the extra fetch stall and load latency, plus the
        final cache statistics. The result is cached on the trace
        instance keyed by the hierarchy config: config sweeps that vary
        only core parameters (PFU count, reconfiguration latency, widths)
        replay the same trace without touching the cache model again.
        """
        from array import array

        indices, addrs = trace.indices, trace.addrs
        n = len(indices)
        key = (id(indices), n, self.config.hierarchy)
        cached = getattr(trace, _DENSE_ATTR, None)
        if cached is not None and cached[0] == key:
            return cached[1]

        hier = MemoryHierarchy(self.config.hierarchy)
        cls_tab = self._cls
        line_bits = self.config.hierarchy.il1.line_size.bit_length() - 1
        fextra = array("i", bytes(4 * n))
        mlat = array("i", bytes(4 * n))
        taken = bytearray(n)
        ifetch, dload, dstore = hier.ifetch, hier.dload, hier.dstore
        cur_line = -1
        for k in range(n):
            si = indices[k]
            pc_addr = TEXT_BASE + 4 * si
            line = pc_addr >> line_bits
            if line != cur_line:
                extra = ifetch(pc_addr) - 1
                if extra > 0:
                    fextra[k] = extra
                cur_line = line
            cls = cls_tab[si]
            if cls == _C_LOAD:
                mlat[k] = dload(addrs[k])
            elif cls == _C_STORE:
                dstore(addrs[k])
            elif cls == _C_CTRL and k + 1 < n and indices[k + 1] != si + 1:
                taken[k] = 1
                cur_line = -1  # taken transfer: refetch the target line
        cache_stats = {
            "il1": vars(hier.il1.stats).copy(),
            "dl1": vars(hier.dl1.stats).copy(),
            "ul2": vars(hier.ul2.stats).copy(),
            "itlb": vars(hier.itlb.stats).copy(),
            "dtlb": vars(hier.dtlb.stats).copy(),
        }
        data = (fextra, taken, mlat, cache_stats)
        setattr(trace, _DENSE_ATTR, (key, data))
        return data

    def _fetch_cycles(self, trace: DynTrace, fextra, taken) -> list[int]:
        """Fetch cycle of every dynamic instruction.

        Fetch never waits on dispatch, issue or commit in this model
        (perfect prediction, unbounded fetch buffer), so with the dense
        pre-pass arrays in hand it is a pure function of the trace and
        ``fetch_width`` — computed once here and cached on the trace so
        repeated replays index a flat array instead of re-running the
        fetch bookkeeping."""
        key = (
            id(trace.indices), len(fextra), self.config.hierarchy,
            self.config.fetch_width,
        )
        cached = getattr(trace, _FETCH_ATTR, None)
        if cached is not None and cached[0] == key:
            return cached[1]
        fw = self.config.fetch_width
        fcyc = [0] * len(fextra)
        fc = 1
        fetched = 0
        for k, e in enumerate(fextra):
            if fetched >= fw:
                fc += 1
                fetched = 0
            if e:
                fc += e
                fetched = 0
            fcyc[k] = fc
            fetched += 1
            if taken[k]:
                fc += 1
                fetched = 0
        setattr(trace, _FETCH_ATTR, (key, fcyc))
        return fcyc

    def _replay_tab(self, trace: DynTrace) -> tuple[list, list[int]]:
        """Per-dynamic-instruction static tuples plus class totals: the
        program's flat replay table mapped over the trace once
        (C-level), cached on the trace instance so repeated replays —
        config sweeps, benchmark iterations — skip the per-instruction
        static lookups entirely. Class counts are a pure function of
        the trace, so they are tallied here (via one Counter over the
        static indices) rather than inside the replay loop."""
        from collections import Counter

        indices = trace.indices
        key = (
            id(indices), len(indices), id(self.program.text),
            self._ext_lat_sig,
        )
        cached = getattr(trace, _REPLAY_ATTR, None)
        if cached is not None and cached[0] == key:
            return cached[1]
        per_k = list(map(self._static_tab.__getitem__, indices))
        counts = [0] * len(_CLASS_NAMES)
        for si, cnt in Counter(indices).items():
            counts[self._cls[si]] += cnt
        data = (per_k, counts)
        setattr(trace, _REPLAY_ATTR, (key, data))
        return data

    def _simulate_fast(
        self,
        trace: DynTrace,
        record_window: tuple[int, int] | None,
        obs,
        horizon: int,
    ) -> SimStats | None:
        """Dense-window replay: the reference pipeline model with the
        per-cycle resource dicts replaced by stamped ring buffers of
        ``horizon`` slots, the cache hierarchy and fetch stage replaced
        by precomputed dense arrays, and the loop body specialized to
        the program's instruction-class mix (:func:`_fast_loop`).
        Returns None if any instruction's issue cycle drifts
        ``horizon`` or more cycles past its dispatch cycle (the caller
        retries with larger rings or falls back to the reference
        loop)."""
        cfg = self.config
        bank = PFUBank(
            cfg.n_pfus, cfg.reconfig_latency,
            latency_by_conf=self._reconfig_by_conf or None,
        )
        indices, addrs = trace.indices, trace.addrs
        fextra, taken, mlat, cache_snapshot = self._dense_pass(trace)
        fcyc = self._fetch_cycles(trace, fextra, taken)
        per_k, class_counts = self._replay_tab(trace)

        present = self._present
        has_mul = _C_MUL in present
        has_div = _C_DIV in present
        has_mem = _C_LOAD in present or _C_STORE in present
        has_ext = _C_EXT in present
        multi = has_mul or has_div or has_mem or has_ext

        # stamped rings: slot `cycle & (horizon-1)` is live iff its stamp
        # equals the cycle; stale slots read as zero and are reclaimed on
        # write, so memory stays O(horizon) regardless of trace length
        iss_s = [0] * horizon
        iss_c = [0] * horizon
        if multi:
            alu_s = [0] * horizon
            alu_c = [0] * horizon
        else:
            alu_s = alu_c = None
        if has_mul or has_div:
            mul_s = [0] * horizon
            mul_c = [0] * horizon
        else:
            mul_s = mul_c = None
        if has_mem:
            mem_s = [0] * horizon
            mem_c = [0] * horizon
        else:
            mem_s = mem_c = None
        pfu_s = (
            [[0] * horizon for _ in range(cfg.n_pfus)]
            if has_ext and cfg.n_pfus else None
        )

        timeline: list[tuple[int, int, int, int, int, int]] = []
        rec_lo, rec_hi = record_window if record_window else (0, -1)

        loop = _fast_loop(
            has_mul, has_div, has_mem, has_ext,
            obs is not None, record_window is not None,
        )
        out = loop(
            per_k, indices, addrs, fcyc, mlat, self._conf,
            cfg.decode_width, cfg.issue_width, cfg.commit_width,
            cfg.ruu_size, cfg.n_ialu, cfg.n_imult, cfg.n_memports,
            horizon, bank,
            iss_s, iss_c, alu_s, alu_c, mul_s, mul_c, mem_s, mem_c,
            pfu_s, rec_lo, rec_hi, timeline,
        )
        if out is None:
            return None
        commit_cycle, stalls, issue_widths, reconfigs = out

        stats = SimStats()
        stats.cycles = commit_cycle
        stats.instructions = len(indices)
        stats.ext_instructions = class_counts[_C_EXT]
        stats.pfu_hits = bank.hits
        stats.pfu_misses = bank.misses
        stats.reconfig_cycles = bank.reconfig_cycles
        stats.class_counts = {
            name: class_counts[i] for i, name in enumerate(_CLASS_NAMES)
        }
        if record_window:
            stats.timeline = timeline
        stats.cache = {
            level: st.copy() for level, st in cache_snapshot.items()
        }
        if obs is not None:
            stats.stall_cycles = {
                reason: cycles
                for reason, cycles in zip(
                    (
                        "fetch.icache", "dispatch.ruu_full",
                        "dispatch.width", "issue.operands",
                        "issue.store_dep", "issue.pfu_config",
                        "issue.div_busy", "issue.structural",
                        "commit.width",
                    ),
                    (sum(fextra), *stalls),
                )
                if cycles
            }
            self._publish(obs, stats, issue_widths, reconfigs)
        return stats

    def _simulate_reference(
        self,
        trace: DynTrace,
        record_window: tuple[int, int] | None,
        obs,
    ) -> SimStats:
        cfg = self.config
        hier = MemoryHierarchy(cfg.hierarchy)
        bank = PFUBank(
            cfg.n_pfus, cfg.reconfig_latency,
            latency_by_conf=self._reconfig_by_conf or None,
        )
        predictor = (
            BimodalPredictor(cfg.bpred_entries)
            if cfg.branch_predictor == "bimodal"
            else None
        )
        ctrl_kind = self._ctrl_kind
        redirect_at = 0

        cls_tab, srcs_tab, dst_tab = self._cls, self._srcs, self._dst
        lat_tab, conf_tab = self._lat, self._conf
        indices, addrs = trace.indices, trace.addrs
        n = len(indices)

        fetch_width = cfg.fetch_width
        decode_width = cfg.decode_width
        issue_width = cfg.issue_width
        commit_width = cfg.commit_width
        ruu_size = cfg.ruu_size
        n_ialu, n_imult, n_memports = cfg.n_ialu, cfg.n_imult, cfg.n_memports
        line_bits = cfg.hierarchy.il1.line_size.bit_length() - 1

        # fetch state
        fetch_cycle = 1
        fetched = 0
        cur_line = -1
        # dispatch state
        disp_cycle = 1
        disp_n = 0
        commit_ring = [0] * ruu_size
        # issue resources (per-cycle counters, sparse)
        issued: dict[int, int] = {}
        alu_used: dict[int, int] = {}
        mul_used: dict[int, int] = {}
        mem_used: dict[int, int] = {}
        pfu_used: dict[tuple[int, int], int] = {}
        div_free = 0
        # dataflow
        reg_ready = [0] * 32
        store_ready: dict[int, int] = {}
        # commit state
        commit_cycle = 1
        commit_n = 0

        stats = SimStats()
        class_counts = [0] * len(_CLASS_NAMES)
        timeline: list[tuple[int, int, int, int, int, int]] = []
        rec_lo, rec_hi = record_window if record_window else (0, -1)

        # observability accumulators (touched only when ``obs`` is live)
        st_fetch_icache = st_disp_ruu = st_disp_width = 0
        st_issue_operands = st_issue_store_dep = 0
        st_issue_pfu = st_issue_div = st_issue_struct = 0
        st_commit_width = 0
        t_pre = 0
        reconfigs: list[tuple[int, int | None, int, int]] = []

        for k in range(n):
            si = indices[k]
            cls = cls_tab[si]
            class_counts[cls] += 1

            # ---------------- fetch ----------------
            pc_addr = TEXT_BASE + 4 * si
            line = pc_addr >> line_bits
            if redirect_at:
                # fetch restarts when the mispredicted branch resolved
                if redirect_at > fetch_cycle:
                    fetch_cycle = redirect_at
                fetched = 0
                cur_line = -1
                redirect_at = 0
            if fetched >= fetch_width:
                fetch_cycle += 1
                fetched = 0
            if line != cur_line:
                extra = hier.ifetch(pc_addr) - 1
                if extra > 0:
                    fetch_cycle += extra
                    fetched = 0
                    if obs is not None:
                        st_fetch_icache += extra
                cur_line = line
            f = fetch_cycle
            fetched += 1
            # taken control transfer ends the fetch group
            if cls == _C_CTRL and k + 1 < n and indices[k + 1] != si + 1:
                fetch_cycle += 1
                fetched = 0
                cur_line = -1

            # ---------------- dispatch ----------------
            d = f + 1
            if d < disp_cycle:
                d = disp_cycle
            if k >= ruu_size:
                freed = commit_ring[k % ruu_size] + 1
                if freed > d:
                    if obs is not None:
                        st_disp_ruu += freed - d
                    d = freed
            if d == disp_cycle and disp_n >= decode_width:
                d += 1
                if obs is not None:
                    st_disp_width += 1
            if d > disp_cycle:
                disp_cycle = d
                disp_n = 0
            disp_n += 1

            # PFU tag check at dispatch (§2.2)
            config_ready = 0
            pfu_slot: int | None = None
            if cls == _C_EXT:
                if obs is None:
                    config_ready, pfu_slot = bank.acquire(conf_tab[si], d)
                else:
                    misses_before = bank.misses
                    config_ready, pfu_slot = bank.acquire(conf_tab[si], d)
                    if bank.misses != misses_before:
                        lat = bank.latency_for(conf_tab[si])
                        reconfigs.append(
                            (conf_tab[si], pfu_slot,
                             config_ready - lat, config_ready)
                        )

            # ---------------- issue ----------------
            t = d + 1
            for r in srcs_tab[si]:
                rr = reg_ready[r]
                if rr > t:
                    t = rr
            if obs is not None and t > d + 1:
                st_issue_operands += t - (d + 1)
            addr = addrs[k]
            if cls == _C_LOAD:
                dep = store_ready.get(addr >> 2, 0)
                if dep > t:
                    if obs is not None:
                        st_issue_store_dep += dep - t
                    t = dep
            elif cls == _C_EXT and config_ready > t:
                if obs is not None:
                    st_issue_pfu += config_ready - t
                t = config_ready
            elif cls == _C_DIV and div_free > t:
                if obs is not None:
                    st_issue_div += div_free - t
                t = div_free

            if obs is not None:
                t_pre = t
            while True:
                if issued.get(t, 0) >= issue_width:
                    t += 1
                    continue
                if cls in (_C_ALU, _C_CTRL, _C_NOP):
                    if alu_used.get(t, 0) >= n_ialu:
                        t += 1
                        continue
                    alu_used[t] = alu_used.get(t, 0) + 1
                elif cls == _C_MUL:
                    if mul_used.get(t, 0) >= n_imult:
                        t += 1
                        continue
                    mul_used[t] = mul_used.get(t, 0) + 1
                elif cls == _C_DIV:
                    if t < div_free:
                        t = div_free
                        continue
                    if mul_used.get(t, 0) >= n_imult:  # divider shares the unit
                        t += 1
                        continue
                    mul_used[t] = mul_used.get(t, 0) + 1
                    div_free = t + lat_tab[si]
                elif cls in (_C_LOAD, _C_STORE):
                    if mem_used.get(t, 0) >= n_memports:
                        t += 1
                        continue
                    mem_used[t] = mem_used.get(t, 0) + 1
                elif cls == _C_EXT and pfu_slot is not None:
                    key = (pfu_slot, t)
                    if pfu_used.get(key, 0) >= 1:
                        t += 1
                        continue
                    pfu_used[key] = 1
                issued[t] = issued.get(t, 0) + 1
                break
            if obs is not None and t > t_pre:
                st_issue_struct += t - t_pre

            if cls == _C_EXT:
                bank.note_issue(pfu_slot, t)

            # ---------------- execute/complete ----------------
            if cls == _C_LOAD:
                complete = t + hier.dload(addr)
            elif cls == _C_STORE:
                hier.dstore(addr)
                complete = t + 1
                store_ready[addr >> 2] = complete
            else:
                complete = t + lat_tab[si]

            dst = dst_tab[si]
            if dst:
                # program-order processing makes this the newest definition
                reg_ready[dst] = complete

            # -------- branch prediction (extension; perfect by default) --
            if predictor is not None and cls == _C_CTRL:
                kind = ctrl_kind[si]
                correct = True
                if kind == 1:      # conditional branch
                    taken = k + 1 < n and indices[k + 1] != si + 1
                    correct = predictor.predict_conditional(pc_addr, taken)
                elif kind == 2:    # call
                    predictor.note_call(TEXT_BASE + 4 * (si + 1))
                elif kind == 3:    # return
                    target = (
                        TEXT_BASE + 4 * indices[k + 1] if k + 1 < n else -1
                    )
                    correct = predictor.predict_return(target)
                if not correct and complete > redirect_at:
                    redirect_at = complete

            # ---------------- commit ----------------
            c = complete + 1
            if c < commit_cycle:
                c = commit_cycle
            if c == commit_cycle and commit_n >= commit_width:
                c += 1
                if obs is not None:
                    st_commit_width += 1
            if c > commit_cycle:
                commit_cycle = c
                commit_n = 0
            commit_n += 1
            commit_ring[k % ruu_size] = c

            if rec_lo <= k < rec_hi:
                timeline.append((si, f, d, t, complete, c))

        stats.cycles = commit_cycle
        stats.instructions = n
        stats.ext_instructions = class_counts[_C_EXT]
        stats.pfu_hits = bank.hits
        stats.pfu_misses = bank.misses
        stats.reconfig_cycles = bank.reconfig_cycles
        stats.class_counts = {
            name: class_counts[i] for i, name in enumerate(_CLASS_NAMES)
        }
        if predictor is not None:
            stats.bpred_lookups = predictor.lookups
            stats.bpred_mispredictions = predictor.mispredictions
        if record_window:
            stats.timeline = timeline
        stats.cache = {
            "il1": vars(hier.il1.stats).copy(),
            "dl1": vars(hier.dl1.stats).copy(),
            "ul2": vars(hier.ul2.stats).copy(),
            "itlb": vars(hier.itlb.stats).copy(),
            "dtlb": vars(hier.dtlb.stats).copy(),
        }
        if obs is not None:
            stats.stall_cycles = {
                reason: cycles
                for reason, cycles in (
                    ("fetch.icache", st_fetch_icache),
                    ("dispatch.ruu_full", st_disp_ruu),
                    ("dispatch.width", st_disp_width),
                    ("issue.operands", st_issue_operands),
                    ("issue.store_dep", st_issue_store_dep),
                    ("issue.pfu_config", st_issue_pfu),
                    ("issue.div_busy", st_issue_div),
                    ("issue.structural", st_issue_struct),
                    ("commit.width", st_commit_width),
                )
                if cycles
            }
            self._publish(obs, stats, issued.values(), reconfigs)
        return stats

    def _publish(
        self,
        obs,
        stats: SimStats,
        issue_widths,
        reconfigs: list[tuple[int, int | None, int, int]],
    ) -> None:
        """Publish one run's metrics/spans to a live recorder."""
        prog = self.program.name
        for reason, cycles in stats.stall_cycles.items():
            obs.counter(f"sim.stall.{reason}", program=prog).inc(cycles)
        if stats.pfu_hits:
            obs.counter("sim.pfu.hit", program=prog).inc(stats.pfu_hits)
        if stats.pfu_misses:
            obs.counter("sim.pfu.reconfig", program=prog).inc(stats.pfu_misses)
        if stats.reconfig_cycles:
            obs.counter("sim.pfu.reconfig_cycles", program=prog).inc(
                stats.reconfig_cycles
            )
        hist = obs.histogram("sim.issue.width", program=prog)
        for width in issue_widths:
            hist.observe(width)
        for name, count in stats.class_counts.items():
            if count:
                obs.counter(f"sim.class.{name}", program=prog).inc(count)
        for level, cstats in stats.cache.items():
            for fld, value in cstats.items():
                if value:
                    obs.counter(
                        f"sim.cache.{level}.{fld}", program=prog
                    ).inc(value)
        for conf, slot, start, end in reconfigs:
            track = f"pfu{slot}" if slot is not None else f"conf{conf}"
            obs.add_span(
                "pfu.reconfig", start, end, track=track,
                conf=conf, program=prog,
            )


def simulate_many(
    program: Program,
    trace: DynTrace,
    configs: "Iterable[MachineConfig]",
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    record_window: tuple[int, int] | None = None,
    jobs: int = 1,
) -> list[SimStats]:
    """Replay one dynamic trace under many machine configurations.

    The single-pass sweep entry point: the per-trace replay artefacts —
    the dense cache/TLB timing pre-pass, the fetch schedule, and the
    flat per-instruction replay table — are cached on ``trace`` the
    first time a configuration needs them and shared by every later
    configuration that can legally reuse them (same memory hierarchy,
    fetch width, and extended-instruction latency model respectively).
    A reconfiguration-latency or PFU-count sweep therefore pays the
    per-dynamic-instruction cache/fetch/decode work once, not once per
    configuration. Results are returned in configuration order and are
    bit-identical to running each configuration on its own simulator.

    ``jobs > 1`` additionally shards each eligible replay into trace
    slices and fans every (configuration, slice) pair into one process
    pool (:mod:`repro.sim.shard`). Sharding is an execution strategy,
    not a semantic knob: results are byte-identical to ``jobs=1``
    (exactness is verified per boundary, with automatic serial fallback)
    and short traces or ineligible configurations simply run serially.
    """
    # Accept any iterable (the explorer streams large grids); a lazy
    # source is drawn exactly once, here.
    if not isinstance(configs, (list, tuple)):
        configs = list(configs)
    if jobs > 1 and record_window is None:
        from repro.sim.shard import simulate_many_sharded

        return simulate_many_sharded(
            program, trace, configs, ext_defs=ext_defs, jobs=jobs
        )
    return [
        OoOSimulator(program, cfg, ext_defs=ext_defs).simulate(
            trace, record_window
        )
        for cfg in configs
    ]


def simulate_program(
    program: Program,
    config: MachineConfig | None = None,
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    max_steps: int = 50_000_000,
) -> SimStats:
    """Functional-execute ``program`` then replay through the timing model.

    .. deprecated::
        Use :func:`repro.api.simulate` (the stable facade) instead.
    """
    warnings.warn(
        "repro.sim.ooo.simulate_program is deprecated; "
        "use repro.api.simulate(program=..., machine=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _simulate_program(program, config, ext_defs, max_steps)


def _simulate_program(
    program: Program,
    config: MachineConfig | None = None,
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    max_steps: int = 50_000_000,
) -> SimStats:
    from repro.sim.functional import FunctionalSimulator

    result = FunctionalSimulator(program, ext_defs=ext_defs).run(
        max_steps=max_steps, collect_trace=True
    )
    sim = OoOSimulator(program, config=config, ext_defs=ext_defs)
    return sim.simulate(result.trace)
