"""The trace-driven out-of-order pipeline model.

For each dynamic instruction the model computes fetch, dispatch, issue,
completion and commit cycles subject to:

- **fetch**: ``fetch_width`` per cycle, stalling on I-cache misses, and
  breaking the fetch group after a taken control transfer (perfect branch
  prediction: no misfetch penalty, but no same-cycle fetch across a taken
  branch);
- **dispatch**: in-order, ``decode_width`` per cycle, requires a free RUU
  entry (entries are freed at commit, window = ``ruu_size``); ``ext``
  instructions perform the PFU tag check here (§2.2) and trigger
  reconfiguration on a miss;
- **issue**: out-of-order wake-up when all source operands are ready,
  bounded by ``issue_width`` and functional-unit availability (ALUs,
  pipelined multiplier, unpipelined divider, memory ports, PFUs — one op
  per PFU per cycle); loads also wait for older stores to the same word
  (perfect memory disambiguation with store-to-load forwarding);
- **complete**: issue + latency (loads consult the cache hierarchy);
  dependents wake via full bypassing;
- **commit**: in-order, ``commit_width`` per cycle.

The simulated time is the commit cycle of the last instruction.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from math import ceil
from typing import TYPE_CHECKING, Mapping

from repro.errors import SimulationError
from repro.isa.encoding import TEXT_BASE
from repro.obs import get_recorder
from repro.isa.opcodes import OpClass, Opcode
from repro.program.program import Program
from repro.sim.cache.hierarchy import MemoryHierarchy
from repro.sim.ooo.branchpred import BimodalPredictor, is_conditional
from repro.sim.ooo.config import MachineConfig
from repro.sim.ooo.pfu import PFUBank
from repro.sim.ooo.stats import SimStats
from repro.sim.trace import DynTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.extinst.extdef import ExtInstDef

# internal instruction classes
_C_ALU = 0
_C_MUL = 1
_C_DIV = 2
_C_LOAD = 3
_C_STORE = 4
_C_CTRL = 5
_C_NOP = 6
_C_EXT = 7

_CLASS_OF = {
    OpClass.ALU: _C_ALU,
    OpClass.MUL: _C_MUL,
    OpClass.DIV: _C_DIV,
    OpClass.LOAD: _C_LOAD,
    OpClass.STORE: _C_STORE,
    OpClass.BRANCH: _C_CTRL,
    OpClass.JUMP: _C_CTRL,
    OpClass.NOP: _C_NOP,
    OpClass.HALT: _C_NOP,
    OpClass.EXT: _C_EXT,
}

_CLASS_NAMES = ["alu", "mul", "div", "load", "store", "ctrl", "nop", "ext"]


class OoOSimulator:
    """Timing simulator for one program (reusable across traces only by
    constructing a new instance — cache and PFU state are per-run)."""

    def __init__(
        self,
        program: Program,
        config: MachineConfig | None = None,
        ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    ) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.ext_defs = dict(ext_defs or {})
        # Pre-extract static per-instruction properties into flat tuples.
        self._cls: list[int] = []
        self._srcs: list[tuple[int, ...]] = []
        self._dst: list[int] = []
        self._lat: list[int] = []
        self._conf: list[int] = []
        self._ctrl_kind: list[int] = []   # 0 none, 1 cond, 2 call, 3 return
        ext_latency = self._ext_latencies()
        for instr in program.text:
            cls = _CLASS_OF[instr.op_class]
            self._cls.append(cls)
            self._srcs.append(tuple(r for r in instr.uses() if r != 0))
            defs = instr.defs()
            self._dst.append(defs[0] if defs and defs[0] != 0 else 0)
            if cls == _C_EXT:
                conf = instr.conf if instr.conf is not None else -1
                self._lat.append(ext_latency.get(conf, 1))
            else:
                self._lat.append(instr.info.latency)
            self._conf.append(instr.conf if instr.conf is not None else -1)
            if is_conditional(instr.op):
                self._ctrl_kind.append(1)
            elif instr.op in (Opcode.JAL, Opcode.JALR):
                self._ctrl_kind.append(2)
            elif instr.op is Opcode.JR:
                self._ctrl_kind.append(3)
            else:
                self._ctrl_kind.append(0)
        self._reconfig_by_conf = self._reconfig_latencies()

    def _ext_latencies(self) -> dict[int, int]:
        """Per-configuration execution latency (§3.1 latency models)."""
        out: dict[int, int] = {}
        if self.config.ext_latency_model == "mapped" and self.ext_defs:
            from repro.hwcost import estimate_cost

            for conf, extdef in self.ext_defs.items():
                levels = estimate_cost(extdef).levels
                out[conf] = max(1, ceil(levels / self.config.lut_levels_per_cycle))
        else:
            for conf, extdef in self.ext_defs.items():
                out[conf] = getattr(extdef, "latency", 1)
        return out

    def _reconfig_latencies(self) -> dict[int, int]:
        """Per-configuration load latency (§6 bitstream model)."""
        if self.config.reconfig_model != "bitstream" or not self.ext_defs:
            return {}
        from repro.hwcost import config_bits, estimate_cost

        out: dict[int, int] = {}
        for conf, extdef in self.ext_defs.items():
            bits = config_bits(estimate_cost(extdef).luts)
            out[conf] = max(1, ceil(bits / self.config.config_bits_per_cycle))
        return out

    # ------------------------------------------------------------------

    def simulate(
        self,
        trace: DynTrace,
        record_window: tuple[int, int] | None = None,
    ) -> SimStats:
        """Replay ``trace`` through the pipeline; returns statistics.

        ``record_window=(start, end)`` additionally records the pipeline
        timeline — (static index, fetch, dispatch, issue, complete,
        commit) per dynamic instruction in ``[start, end)`` — into
        ``stats.timeline`` for visualisation (see
        :mod:`repro.sim.ooo.timeline`).

        When the process-wide observability recorder is enabled
        (:mod:`repro.obs`), the run additionally records per-stage stall
        cycles, PFU reconfiguration spans (in simulated cycles), an
        issue-width histogram, and cache traffic; disabled, the hooks
        cost one hoisted boolean check.
        """
        if len(trace) == 0:
            raise SimulationError("empty trace")
        rec = get_recorder()
        obs = rec if rec.enabled else None
        with (
            rec.span("sim.timing", program=self.program.name)
            if obs is not None else nullcontext()
        ) as obs_span:
            stats = self._simulate(trace, record_window, obs)
        if obs is not None:
            obs_span["instructions"] = stats.instructions
            obs_span["cycles"] = stats.cycles
        return stats

    def _simulate(
        self,
        trace: DynTrace,
        record_window: tuple[int, int] | None,
        obs,
    ) -> SimStats:
        cfg = self.config
        hier = MemoryHierarchy(cfg.hierarchy)
        bank = PFUBank(
            cfg.n_pfus, cfg.reconfig_latency,
            latency_by_conf=self._reconfig_by_conf or None,
        )
        predictor = (
            BimodalPredictor(cfg.bpred_entries)
            if cfg.branch_predictor == "bimodal"
            else None
        )
        ctrl_kind = self._ctrl_kind
        redirect_at = 0

        cls_tab, srcs_tab, dst_tab = self._cls, self._srcs, self._dst
        lat_tab, conf_tab = self._lat, self._conf
        indices, addrs = trace.indices, trace.addrs
        n = len(indices)

        fetch_width = cfg.fetch_width
        decode_width = cfg.decode_width
        issue_width = cfg.issue_width
        commit_width = cfg.commit_width
        ruu_size = cfg.ruu_size
        n_ialu, n_imult, n_memports = cfg.n_ialu, cfg.n_imult, cfg.n_memports
        line_bits = cfg.hierarchy.il1.line_size.bit_length() - 1

        # fetch state
        fetch_cycle = 1
        fetched = 0
        cur_line = -1
        # dispatch state
        disp_cycle = 1
        disp_n = 0
        commit_ring = [0] * ruu_size
        # issue resources (per-cycle counters, sparse)
        issued: dict[int, int] = {}
        alu_used: dict[int, int] = {}
        mul_used: dict[int, int] = {}
        mem_used: dict[int, int] = {}
        pfu_used: dict[tuple[int, int], int] = {}
        div_free = 0
        # dataflow
        reg_ready = [0] * 32
        store_ready: dict[int, int] = {}
        # commit state
        commit_cycle = 1
        commit_n = 0

        stats = SimStats()
        class_counts = [0] * len(_CLASS_NAMES)
        timeline: list[tuple[int, int, int, int, int, int]] = []
        rec_lo, rec_hi = record_window if record_window else (0, -1)

        # observability accumulators (touched only when ``obs`` is live)
        st_fetch_icache = st_disp_ruu = st_disp_width = 0
        st_issue_operands = st_issue_store_dep = 0
        st_issue_pfu = st_issue_div = st_issue_struct = 0
        st_commit_width = 0
        t_pre = 0
        reconfigs: list[tuple[int, int | None, int, int]] = []

        for k in range(n):
            si = indices[k]
            cls = cls_tab[si]
            class_counts[cls] += 1

            # ---------------- fetch ----------------
            pc_addr = TEXT_BASE + 4 * si
            line = pc_addr >> line_bits
            if redirect_at:
                # fetch restarts when the mispredicted branch resolved
                if redirect_at > fetch_cycle:
                    fetch_cycle = redirect_at
                fetched = 0
                cur_line = -1
                redirect_at = 0
            if fetched >= fetch_width:
                fetch_cycle += 1
                fetched = 0
            if line != cur_line:
                extra = hier.ifetch(pc_addr) - 1
                if extra > 0:
                    fetch_cycle += extra
                    fetched = 0
                    if obs is not None:
                        st_fetch_icache += extra
                cur_line = line
            f = fetch_cycle
            fetched += 1
            # taken control transfer ends the fetch group
            if cls == _C_CTRL and k + 1 < n and indices[k + 1] != si + 1:
                fetch_cycle += 1
                fetched = 0
                cur_line = -1

            # ---------------- dispatch ----------------
            d = f + 1
            if d < disp_cycle:
                d = disp_cycle
            if k >= ruu_size:
                freed = commit_ring[k % ruu_size] + 1
                if freed > d:
                    if obs is not None:
                        st_disp_ruu += freed - d
                    d = freed
            if d == disp_cycle and disp_n >= decode_width:
                d += 1
                if obs is not None:
                    st_disp_width += 1
            if d > disp_cycle:
                disp_cycle = d
                disp_n = 0
            disp_n += 1

            # PFU tag check at dispatch (§2.2)
            config_ready = 0
            pfu_slot: int | None = None
            if cls == _C_EXT:
                if obs is None:
                    config_ready, pfu_slot = bank.acquire(conf_tab[si], d)
                else:
                    misses_before = bank.misses
                    config_ready, pfu_slot = bank.acquire(conf_tab[si], d)
                    if bank.misses != misses_before:
                        lat = bank.latency_for(conf_tab[si])
                        reconfigs.append(
                            (conf_tab[si], pfu_slot,
                             config_ready - lat, config_ready)
                        )

            # ---------------- issue ----------------
            t = d + 1
            for r in srcs_tab[si]:
                rr = reg_ready[r]
                if rr > t:
                    t = rr
            if obs is not None and t > d + 1:
                st_issue_operands += t - (d + 1)
            addr = addrs[k]
            if cls == _C_LOAD:
                dep = store_ready.get(addr >> 2, 0)
                if dep > t:
                    if obs is not None:
                        st_issue_store_dep += dep - t
                    t = dep
            elif cls == _C_EXT and config_ready > t:
                if obs is not None:
                    st_issue_pfu += config_ready - t
                t = config_ready
            elif cls == _C_DIV and div_free > t:
                if obs is not None:
                    st_issue_div += div_free - t
                t = div_free

            if obs is not None:
                t_pre = t
            while True:
                if issued.get(t, 0) >= issue_width:
                    t += 1
                    continue
                if cls in (_C_ALU, _C_CTRL, _C_NOP):
                    if alu_used.get(t, 0) >= n_ialu:
                        t += 1
                        continue
                    alu_used[t] = alu_used.get(t, 0) + 1
                elif cls == _C_MUL:
                    if mul_used.get(t, 0) >= n_imult:
                        t += 1
                        continue
                    mul_used[t] = mul_used.get(t, 0) + 1
                elif cls == _C_DIV:
                    if t < div_free:
                        t = div_free
                        continue
                    if mul_used.get(t, 0) >= n_imult:  # divider shares the unit
                        t += 1
                        continue
                    mul_used[t] = mul_used.get(t, 0) + 1
                    div_free = t + lat_tab[si]
                elif cls in (_C_LOAD, _C_STORE):
                    if mem_used.get(t, 0) >= n_memports:
                        t += 1
                        continue
                    mem_used[t] = mem_used.get(t, 0) + 1
                elif cls == _C_EXT and pfu_slot is not None:
                    key = (pfu_slot, t)
                    if pfu_used.get(key, 0) >= 1:
                        t += 1
                        continue
                    pfu_used[key] = 1
                issued[t] = issued.get(t, 0) + 1
                break
            if obs is not None and t > t_pre:
                st_issue_struct += t - t_pre

            if cls == _C_EXT:
                bank.note_issue(pfu_slot, t)

            # ---------------- execute/complete ----------------
            if cls == _C_LOAD:
                complete = t + hier.dload(addr)
            elif cls == _C_STORE:
                hier.dstore(addr)
                complete = t + 1
                store_ready[addr >> 2] = complete
            else:
                complete = t + lat_tab[si]

            dst = dst_tab[si]
            if dst:
                # program-order processing makes this the newest definition
                reg_ready[dst] = complete

            # -------- branch prediction (extension; perfect by default) --
            if predictor is not None and cls == _C_CTRL:
                kind = ctrl_kind[si]
                correct = True
                if kind == 1:      # conditional branch
                    taken = k + 1 < n and indices[k + 1] != si + 1
                    correct = predictor.predict_conditional(pc_addr, taken)
                elif kind == 2:    # call
                    predictor.note_call(TEXT_BASE + 4 * (si + 1))
                elif kind == 3:    # return
                    target = (
                        TEXT_BASE + 4 * indices[k + 1] if k + 1 < n else -1
                    )
                    correct = predictor.predict_return(target)
                if not correct and complete > redirect_at:
                    redirect_at = complete

            # ---------------- commit ----------------
            c = complete + 1
            if c < commit_cycle:
                c = commit_cycle
            if c == commit_cycle and commit_n >= commit_width:
                c += 1
                if obs is not None:
                    st_commit_width += 1
            if c > commit_cycle:
                commit_cycle = c
                commit_n = 0
            commit_n += 1
            commit_ring[k % ruu_size] = c

            if rec_lo <= k < rec_hi:
                timeline.append((si, f, d, t, complete, c))

        stats.cycles = commit_cycle
        stats.instructions = n
        stats.ext_instructions = class_counts[_C_EXT]
        stats.pfu_hits = bank.hits
        stats.pfu_misses = bank.misses
        stats.reconfig_cycles = bank.reconfig_cycles
        stats.class_counts = {
            name: class_counts[i] for i, name in enumerate(_CLASS_NAMES)
        }
        if predictor is not None:
            stats.bpred_lookups = predictor.lookups
            stats.bpred_mispredictions = predictor.mispredictions
        if record_window:
            stats.timeline = timeline
        stats.cache = {
            "il1": vars(hier.il1.stats).copy(),
            "dl1": vars(hier.dl1.stats).copy(),
            "ul2": vars(hier.ul2.stats).copy(),
            "itlb": vars(hier.itlb.stats).copy(),
            "dtlb": vars(hier.dtlb.stats).copy(),
        }
        if obs is not None:
            stats.stall_cycles = {
                reason: cycles
                for reason, cycles in (
                    ("fetch.icache", st_fetch_icache),
                    ("dispatch.ruu_full", st_disp_ruu),
                    ("dispatch.width", st_disp_width),
                    ("issue.operands", st_issue_operands),
                    ("issue.store_dep", st_issue_store_dep),
                    ("issue.pfu_config", st_issue_pfu),
                    ("issue.div_busy", st_issue_div),
                    ("issue.structural", st_issue_struct),
                    ("commit.width", st_commit_width),
                )
                if cycles
            }
            self._publish(obs, stats, issued, reconfigs)
        return stats

    def _publish(
        self,
        obs,
        stats: SimStats,
        issued: dict[int, int],
        reconfigs: list[tuple[int, int | None, int, int]],
    ) -> None:
        """Publish one run's metrics/spans to a live recorder."""
        prog = self.program.name
        for reason, cycles in stats.stall_cycles.items():
            obs.counter(f"sim.stall.{reason}", program=prog).inc(cycles)
        if stats.pfu_hits:
            obs.counter("sim.pfu.hit", program=prog).inc(stats.pfu_hits)
        if stats.pfu_misses:
            obs.counter("sim.pfu.reconfig", program=prog).inc(stats.pfu_misses)
        if stats.reconfig_cycles:
            obs.counter("sim.pfu.reconfig_cycles", program=prog).inc(
                stats.reconfig_cycles
            )
        hist = obs.histogram("sim.issue.width", program=prog)
        for width in issued.values():
            hist.observe(width)
        for name, count in stats.class_counts.items():
            if count:
                obs.counter(f"sim.class.{name}", program=prog).inc(count)
        for level, cstats in stats.cache.items():
            for fld, value in cstats.items():
                if value:
                    obs.counter(
                        f"sim.cache.{level}.{fld}", program=prog
                    ).inc(value)
        for conf, slot, start, end in reconfigs:
            track = f"pfu{slot}" if slot is not None else f"conf{conf}"
            obs.add_span(
                "pfu.reconfig", start, end, track=track,
                conf=conf, program=prog,
            )


def simulate_program(
    program: Program,
    config: MachineConfig | None = None,
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    max_steps: int = 50_000_000,
) -> SimStats:
    """Functional-execute ``program`` then replay through the timing model.

    .. deprecated::
        Use :func:`repro.api.simulate` (the stable facade) instead.
    """
    warnings.warn(
        "repro.sim.ooo.simulate_program is deprecated; "
        "use repro.api.simulate(program=..., machine=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _simulate_program(program, config, ext_defs, max_steps)


def _simulate_program(
    program: Program,
    config: MachineConfig | None = None,
    ext_defs: Mapping[int, "ExtInstDef"] | None = None,
    max_steps: int = 50_000_000,
) -> SimStats:
    from repro.sim.functional import FunctionalSimulator

    result = FunctionalSimulator(program, ext_defs=ext_defs).run(
        max_steps=max_steps, collect_trace=True
    )
    sim = OoOSimulator(program, config=config, ext_defs=ext_defs)
    return sim.simulate(result.trace)
