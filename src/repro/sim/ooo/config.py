"""Machine configuration for the T1000 timing model."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.sim.cache.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class MachineConfig:
    """T1000 microarchitecture parameters.

    Defaults model the paper's machine: a 4-issue out-of-order superscalar
    (SimpleScalar RUU scheme) with 2 PFUs and a 10-cycle reconfiguration
    penalty. ``n_pfus=None`` models the unlimited-PFU idealisation of §4.
    """

    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    ruu_size: int = 64

    n_ialu: int = 4          # single-cycle integer ALUs (also branches)
    n_imult: int = 1         # pipelined integer multiplier
    n_memports: int = 2      # cache ports (loads + stores)

    n_pfus: int | None = 2   # None = unlimited PFUs
    reconfig_latency: int = 10  # cycles to load a PFU configuration

    #: "fixed" charges ``reconfig_latency`` per configuration load (the
    #: paper's model); "bitstream" derives each configuration's load time
    #: from its XC4000 bitstream size (§6 hook): bits / bandwidth.
    reconfig_model: str = "fixed"
    config_bits_per_cycle: int = 800

    #: "single_cycle" executes every extended instruction in one cycle
    #: (§3.1's default assumption); "mapped" derives the latency from the
    #: LUT mapping's critical path ("this could easily be altered to
    #: allow for varying execution times", §3.1).
    ext_latency_model: str = "single_cycle"
    lut_levels_per_cycle: int = 8   # LUT levels that fit one clock

    #: "perfect" matches the paper (§3.1); "bimodal" adds a 2-bit
    #: predictor with redirect-on-misprediction (extension/ablation).
    branch_predictor: str = "perfect"
    bpred_entries: int = 2048

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    #: Execution strategy, not semantics: allow the dense-window fast
    #: replay loop (bit-identical to the reference loop; see
    #: docs/simulator.md "Fast path"). ``False`` forces the reference
    #: loop, as does ``REPRO_SIM_REFERENCE=1`` in the environment.
    sim_fast_path: bool = True

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "decode_width",
            "issue_width",
            "commit_width",
            "ruu_size",
            "n_ialu",
            "n_imult",
            "n_memports",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.n_pfus is not None and self.n_pfus < 1:
            raise ConfigurationError("n_pfus must be >= 1 or None (unlimited)")
        if self.reconfig_latency < 0:
            raise ConfigurationError("reconfig_latency must be >= 0")
        if self.reconfig_model not in ("fixed", "bitstream"):
            raise ConfigurationError(
                f"unknown reconfig_model {self.reconfig_model!r}"
            )
        if self.ext_latency_model not in ("single_cycle", "mapped"):
            raise ConfigurationError(
                f"unknown ext_latency_model {self.ext_latency_model!r}"
            )
        if self.branch_predictor not in ("perfect", "bimodal"):
            raise ConfigurationError(
                f"unknown branch_predictor {self.branch_predictor!r}"
            )
        if self.config_bits_per_cycle < 1 or self.lut_levels_per_cycle < 1:
            raise ConfigurationError("bandwidth/levels parameters must be >= 1")
        if self.bpred_entries < 1 or self.bpred_entries & (self.bpred_entries - 1):
            raise ConfigurationError("bpred_entries must be a power of two")

    def with_pfus(
        self, n_pfus: int | None, reconfig_latency: int | None = None
    ) -> "MachineConfig":
        """Copy with a different PFU bank configuration."""
        kwargs = {"n_pfus": n_pfus}
        if reconfig_latency is not None:
            kwargs["reconfig_latency"] = reconfig_latency
        return replace(self, **kwargs)


#: The baseline superscalar of Figure 2 bar 1: identical core, no PFUs.
#: (Baseline runs contain no ``ext`` instructions, so any PFU setting is
#: inert; this constant just documents intent.)
BASELINE = MachineConfig()
