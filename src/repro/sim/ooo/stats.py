"""Timing-simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimStats:
    """Results of one timing simulation."""

    cycles: int = 0
    instructions: int = 0          # committed dynamic instructions
    ext_instructions: int = 0      # committed extended instructions

    pfu_hits: int = 0              # ext dispatches finding their config loaded
    pfu_misses: int = 0            # ext dispatches triggering reconfiguration
    reconfig_cycles: int = 0       # total configuration-loading cycles paid

    bpred_lookups: int = 0         # 0 under perfect prediction
    bpred_mispredictions: int = 0

    class_counts: dict[str, int] = field(default_factory=dict)
    cache: dict[str, dict[str, int]] = field(default_factory=dict)
    #: per-stage stall attribution (``"stage.reason" -> cycles``); only
    #: populated when the process-wide observability recorder is enabled
    #: (:mod:`repro.obs`) — empty otherwise to keep the hot loop clean
    stall_cycles: dict[str, int] = field(default_factory=dict)
    #: optional recorded pipeline timeline: (static index, fetch,
    #: dispatch, issue, complete, commit) per recorded instruction
    timeline: list[tuple[int, int, int, int, int, int]] = field(
        default_factory=list
    )

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def pfu_hit_rate(self) -> float:
        total = self.pfu_hits + self.pfu_misses
        return self.pfu_hits / total if total else 0.0

    def speedup_over(self, baseline: "SimStats") -> float:
        """Execution-time speedup of this run relative to ``baseline``."""
        if self.cycles == 0:
            raise ValueError("cannot compute speedup: zero cycles")
        return baseline.cycles / self.cycles

    def summary(self) -> str:
        lines = [
            f"cycles            {self.cycles}",
            f"instructions      {self.instructions}",
            f"IPC               {self.ipc:.3f}",
            f"ext instructions  {self.ext_instructions}",
            f"PFU hits/misses   {self.pfu_hits}/{self.pfu_misses}",
            f"reconfig cycles   {self.reconfig_cycles}",
        ]
        for name, stats in sorted(self.cache.items()):
            acc = stats.get("accesses", 0)
            mis = stats.get("misses", 0)
            rate = mis / acc if acc else 0.0
            lines.append(f"{name:<6} accesses   {acc} (miss rate {rate:.3%})")
        return "\n".join(lines)
