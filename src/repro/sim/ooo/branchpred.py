"""Branch prediction (extension over the paper's perfect-prediction model).

The paper simulates "with perfect branch prediction" (§3.1), which this
package defaults to. For sensitivity studies the timing model can instead
use this classic predictor combination:

- conditional branches: a bimodal table of 2-bit saturating counters,
  indexed by word PC;
- direct jumps/calls: always predicted (a BTB is assumed);
- indirect jumps (``jr``/``jalr``): a return-address stack, pushed by
  calls and popped by returns — mispredicts only on stack underflow or
  non-call/return indirection.

A misprediction redirects fetch when the branch resolves (executes).
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode


class BimodalPredictor:
    """2-bit-counter bimodal predictor plus a return-address stack."""

    def __init__(self, entries: int = 2048, ras_depth: int = 16) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._counters = [2] * entries   # weakly taken
        self._ras: list[int] = []
        self._ras_depth = ras_depth
        self.lookups = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------

    def predict_conditional(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; train with the actual outcome.
        Returns whether the prediction was correct."""
        self.lookups += 1
        idx = (pc >> 2) & self._mask
        counter = self._counters[idx]
        predicted_taken = counter >= 2
        if taken and counter < 3:
            self._counters[idx] = counter + 1
        elif not taken and counter > 0:
            self._counters[idx] = counter - 1
        correct = predicted_taken == taken
        if not correct:
            self.mispredictions += 1
        return correct

    def note_call(self, return_pc: int) -> None:
        """A jal/jalr executes: push the return address."""
        if len(self._ras) >= self._ras_depth:
            self._ras.pop(0)
        self._ras.append(return_pc)

    def predict_return(self, actual_target_pc: int) -> bool:
        """A jr executes: pop and compare. Returns prediction correctness."""
        self.lookups += 1
        predicted = self._ras.pop() if self._ras else None
        correct = predicted == actual_target_pc
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups


def is_conditional(op: Opcode) -> bool:
    return op in (
        Opcode.BEQ, Opcode.BNE, Opcode.BLEZ,
        Opcode.BGTZ, Opcode.BLTZ, Opcode.BGEZ,
    )
