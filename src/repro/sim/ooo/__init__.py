"""The T1000 out-of-order timing model.

A trace-driven reproduction of the paper's SimpleScalar-based simulator
(§3.1): 4-wide fetch/decode/issue/commit, a Register Update Unit (RUU)
window, per-class functional units, realistic caches and TLBs, perfect
branch prediction — plus the programmable functional units (PFUs) of §2.2
with config-ID tag checks at dispatch, LRU replacement, and a configurable
reconfiguration latency.
"""

from repro.sim.ooo.config import MachineConfig
from repro.sim.ooo.pfu import PFUBank
from repro.sim.ooo.pipeline import OoOSimulator, simulate_many, simulate_program
from repro.sim.ooo.stats import SimStats

__all__ = [
    "MachineConfig",
    "OoOSimulator",
    "simulate_many",
    "simulate_program",
    "SimStats",
    "PFUBank",
]
