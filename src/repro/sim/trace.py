"""Dynamic-trace representation.

The timing model is trace-driven (perfect branch prediction, as in the
paper): the functional simulator records which static instruction executed
at each dynamic step plus its effective memory address, and the timing
model replays that stream. Static per-instruction properties (sources,
destination, latency class) are looked up from the program, so the trace
itself stays compact: two parallel integer arrays.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class DynTrace:
    """A dynamic execution trace.

    ``indices[k]`` is the static text index of the k-th executed
    instruction; ``addrs[k]`` is its effective byte address for loads and
    stores, or -1.
    """

    indices: array = field(default_factory=lambda: array("i"))
    addrs: array = field(default_factory=lambda: array("q"))

    def __len__(self) -> int:
        return len(self.indices)

    def __getstate__(self):
        """Pickle only the two trace arrays: the timing model caches
        derived per-trace artefacts on the instance (underscore
        attributes keyed by ``id()``, meaningless in another process);
        they are recomputed on first replay after unpickling."""
        return {
            k: v for k, v in self.__dict__.items() if not k.startswith("_")
        }

    def append(self, static_index: int, addr: int = -1) -> None:
        self.indices.append(static_index)
        self.addrs.append(addr)

    def extend(self, indices: Iterable[int], addrs: Iterable[int]) -> None:
        """Bulk-append parallel index/address runs (what the block-compiled
        interpreter emits: one call per basic block instead of one per
        dynamic instruction)."""
        before = len(self.indices)
        self.indices.extend(indices)
        try:
            self.addrs.extend(addrs)
            if len(self.indices) != len(self.addrs):
                raise ValueError(
                    "extend: indices and addrs runs have different lengths"
                )
        except Exception:
            # Roll back so a mismatched call cannot corrupt the trace.
            del self.indices[before:]
            del self.addrs[before:]
            raise

    def static_counts(self, n_static: int) -> list[int]:
        """Execution count per static instruction index.

        Cached on the instance (and invalidated when the trace grows):
        profiling and selection call this repeatedly on multi-million-entry
        traces.  The underscore attribute is excluded from pickling by
        ``__getstate__``."""
        key = (len(self.indices), n_static)
        cached = getattr(self, "_static_counts_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        counts = [0] * n_static
        for idx, count in Counter(self.indices).items():
            counts[idx] = count
        self._static_counts_cache = (key, counts)
        return counts
