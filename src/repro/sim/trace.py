"""Dynamic-trace representation.

The timing model is trace-driven (perfect branch prediction, as in the
paper): the functional simulator records which static instruction executed
at each dynamic step plus its effective memory address, and the timing
model replays that stream. Static per-instruction properties (sources,
destination, latency class) are looked up from the program, so the trace
itself stays compact: two parallel integer arrays.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field


@dataclass
class DynTrace:
    """A dynamic execution trace.

    ``indices[k]`` is the static text index of the k-th executed
    instruction; ``addrs[k]`` is its effective byte address for loads and
    stores, or -1.
    """

    indices: array = field(default_factory=lambda: array("i"))
    addrs: array = field(default_factory=lambda: array("q"))

    def __len__(self) -> int:
        return len(self.indices)

    def append(self, static_index: int, addr: int = -1) -> None:
        self.indices.append(static_index)
        self.addrs.append(addr)

    def static_counts(self, n_static: int) -> list[int]:
        """Execution count per static instruction index."""
        counts = [0] * n_static
        for idx in self.indices:
            counts[idx] += 1
        return counts
