"""Dynamic-trace representation.

The timing model is trace-driven (perfect branch prediction, as in the
paper): the functional simulator records which static instruction executed
at each dynamic step plus its effective memory address, and the timing
model replays that stream. Static per-instruction properties (sources,
destination, latency class) are looked up from the program, so the trace
itself stays compact: two parallel integer arrays.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable


def _column_from_bytes(typecode: str, raw: bytes) -> array:
    """Rebuild a plain column array from legacy pickled
    :class:`ColumnView` bytes (kept so payloads pickled by older
    builds still unpickle)."""
    column = array(typecode)
    column.frombytes(raw)
    return column


class ColumnView:
    """Zero-copy window over one columnar trace array.

    Wraps a ``memoryview`` slice of the column, so building a view —
    and re-slicing it — never copies the column data.  Supports the
    read-only sequence protocol the replay loops use (``len``, index,
    slice, iterate).  Pickling materialises the window as a
    :mod:`repro.wire` single-column frame (the one unavoidable copy,
    paid only at the process boundary — this is how ``sim.shard``
    process-pool payloads ride the same binary framing as the serve
    wire), so a worker process receives an ordinary array.
    """

    __slots__ = ("raw",)

    def __init__(self, column, start: int | None = None,
                 stop: int | None = None):
        view = column if isinstance(column, memoryview) \
            else memoryview(column)
        self.raw = view if start is None else view[start:stop]

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, key):
        if isinstance(key, slice):
            return ColumnView(self.raw[key])
        return self.raw[key]

    def __iter__(self):
        return iter(self.raw)

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnView):
            return self.raw == other.raw
        return NotImplemented

    def tolist(self) -> list[int]:
        return self.raw.tolist()

    def __reduce__(self):
        from repro import wire

        return wire.column_from_bytes, (wire.column_to_bytes(self),)


@dataclass
class DynTrace:
    """A dynamic execution trace.

    ``indices[k]`` is the static text index of the k-th executed
    instruction; ``addrs[k]`` is its effective byte address for loads and
    stores, or -1.
    """

    indices: array = field(default_factory=lambda: array("i"))
    addrs: array = field(default_factory=lambda: array("q"))

    def __len__(self) -> int:
        return len(self.indices)

    def __getstate__(self):
        """Pickle only the two trace arrays: the timing model caches
        derived per-trace artefacts on the instance (underscore
        attributes keyed by ``id()``, meaningless in another process);
        they are recomputed on first replay after unpickling."""
        return {
            k: v for k, v in self.__dict__.items() if not k.startswith("_")
        }

    def column_views(self, start: int, stop: int
                     ) -> "tuple[ColumnView, ColumnView]":
        """Zero-copy ``(indices, addrs)`` views of ``[start, stop)``.

        The sharded-replay planner slices a trace into K overlapping
        windows; with a million-instruction trace, copying the two
        columns per slice dominated planning cost.  These views share
        the trace's buffers (no copy) and only materialise when
        pickled to a worker process."""
        return (
            ColumnView(self.indices, start, stop),
            ColumnView(self.addrs, start, stop),
        )

    def append(self, static_index: int, addr: int = -1) -> None:
        self.indices.append(static_index)
        self.addrs.append(addr)

    def extend(self, indices: Iterable[int], addrs: Iterable[int]) -> None:
        """Bulk-append parallel index/address runs (what the block-compiled
        interpreter emits: one call per basic block instead of one per
        dynamic instruction)."""
        before = len(self.indices)
        self.indices.extend(indices)
        try:
            self.addrs.extend(addrs)
            if len(self.indices) != len(self.addrs):
                raise ValueError(
                    "extend: indices and addrs runs have different lengths"
                )
        except Exception:
            # Roll back so a mismatched call cannot corrupt the trace.
            del self.indices[before:]
            del self.addrs[before:]
            raise

    def static_counts(self, n_static: int) -> list[int]:
        """Execution count per static instruction index.

        Cached on the instance (and invalidated when the trace grows):
        profiling and selection call this repeatedly on multi-million-entry
        traces.  The underscore attribute is excluded from pickling by
        ``__getstate__``."""
        key = (len(self.indices), n_static)
        cached = getattr(self, "_static_counts_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        counts = [0] * n_static
        for idx, count in Counter(self.indices).items():
            counts[idx] = count
        self._static_counts_cache = (key, counts)
        return counts
