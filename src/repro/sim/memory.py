"""Sparse byte-addressable memory.

Backed by 64 KiB pages allocated on demand. Little-endian, with alignment
enforcement (the T1000, like MIPS, faults on misaligned accesses). In
``strict`` mode, reading a page that was never written (and is not part of
the preloaded data image) raises :class:`MemoryFault` — useful for
catching workload bugs; the default is zero-fill.
"""

from __future__ import annotations

from repro.errors import MemoryFault

PAGE_BITS = 16
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1
ADDR_MASK = 0xFFFF_FFFF


class Memory:
    """Sparse 32-bit address-space memory."""

    def __init__(self, strict: bool = False) -> None:
        self._pages: dict[int, bytearray] = {}
        self.strict = strict

    # ------------------------------------------------------------------

    def load_image(self, base: int, image: bytes) -> None:
        """Copy ``image`` into memory starting at ``base``."""
        for offset, byte in enumerate(image):
            addr = (base + offset) & ADDR_MASK
            self._page_for_write(addr)[addr & PAGE_MASK] = byte

    def _page_for_write(self, addr: int) -> bytearray:
        page = self._pages.get(addr >> PAGE_BITS)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[addr >> PAGE_BITS] = page
        return page

    def _page_for_read(self, addr: int) -> bytearray | None:
        page = self._pages.get(addr >> PAGE_BITS)
        if page is None and self.strict:
            raise MemoryFault(f"read from unmapped address {addr:#010x}", addr)
        return page

    # ------------------------------------------------------------------
    # typed accessors (all take/return unsigned values; callers sign-extend)

    def _check(self, addr: int, align: int) -> int:
        addr &= ADDR_MASK
        if align > 1 and addr % align:
            raise MemoryFault(
                f"misaligned {align}-byte access at {addr:#010x}", addr
            )
        return addr

    def read_byte(self, addr: int) -> int:
        addr = self._check(addr, 1)
        page = self._page_for_read(addr)
        return 0 if page is None else page[addr & PAGE_MASK]

    def read_half(self, addr: int) -> int:
        addr = self._check(addr, 2)
        page = self._page_for_read(addr)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return page[off] | (page[off + 1] << 8)

    def read_word(self, addr: int) -> int:
        addr = self._check(addr, 4)
        page = self._page_for_read(addr)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return int.from_bytes(page[off : off + 4], "little")

    def write_byte(self, addr: int, value: int) -> None:
        addr = self._check(addr, 1)
        self._page_for_write(addr)[addr & PAGE_MASK] = value & 0xFF

    def write_half(self, addr: int, value: int) -> None:
        addr = self._check(addr, 2)
        page = self._page_for_write(addr)
        off = addr & PAGE_MASK
        page[off] = value & 0xFF
        page[off + 1] = (value >> 8) & 0xFF

    def write_word(self, addr: int, value: int) -> None:
        addr = self._check(addr, 4)
        page = self._page_for_write(addr)
        off = addr & PAGE_MASK
        page[off : off + 4] = (value & 0xFFFF_FFFF).to_bytes(4, "little")

    # ------------------------------------------------------------------

    def read_block(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes (zero-filled over unmapped gaps)."""
        return bytes(self.read_byte(addr + i) for i in range(size))

    def words(self, addr: int, count: int) -> list[int]:
        """Read ``count`` consecutive unsigned words starting at ``addr``."""
        return [self.read_word(addr + 4 * i) for i in range(count)]

    def mapped_pages(self) -> int:
        """Number of allocated pages (observability for tests)."""
        return len(self._pages)
