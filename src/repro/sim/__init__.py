"""Simulators.

- :mod:`repro.sim.memory` — sparse byte-addressable memory.
- :mod:`repro.sim.functional` — the architectural (functional) simulator;
  executes programs, optionally producing a dynamic trace and profiles.
- :mod:`repro.sim.cache` — set-associative caches and TLBs.
- :mod:`repro.sim.ooo` — the T1000 out-of-order timing model with PFUs.
"""

from repro.sim.functional import ExecutionResult, FunctionalSimulator, run_program
from repro.sim.memory import Memory
from repro.sim.trace import DynTrace

__all__ = [
    "FunctionalSimulator",
    "ExecutionResult",
    "run_program",
    "Memory",
    "DynTrace",
]
