"""Block-compiled fast path for the functional simulator.

The reference interpreter (:meth:`FunctionalSimulator._run`) dispatches
every dynamic instruction on a small integer kind. This module removes
that per-instruction dispatch entirely: at first use the program is
partitioned into basic blocks and each block is compiled — threaded-code
/ superinstruction style — into one specialized Python function that

- keeps the block's architectural registers in Python locals (loaded
  once on entry, written back once on exit),
- inlines the ALU semantics as plain expressions (masked 32-bit
  arithmetic, compile-time-folded immediates) instead of calling the
  ``_EVAL`` dispatch table,
- appends the block's dynamic-trace entries in one bulk
  :meth:`~repro.sim.trace.DynTrace.extend` call, and
- returns the next static index (or ``-1`` for halt), so the outer
  dispatch loop runs once per *block*, not once per instruction.

The compiled path is semantics-preserving by construction and verified
bit-identical by differential tests (``tests/test_fastpath.py`` and the
:mod:`repro.fuzz` property campaign). ``ext`` instructions compile to a
call of their definition's :meth:`evaluate` (the per-run ``ext_defs``
table is passed into every block function, so the per-program code cache
stays valid across simulators with different definitions). Anything the
compiler does not handle falls back to the reference single-step
interpreter: dynamic jumps landing mid-block and the last instructions
before a ``max_steps`` budget expires. Profiling runs (``profile=True``) use a
separately compiled block variant that counts one increment per *block*
execution (scattered to per-instruction ``exec_counts`` afterwards) and
inlines the bitwidth-maxima updates exactly where the reference loop
performs them. ``REPRO_SIM_REFERENCE=1`` forces the reference loop
everywhere (see docs/simulator.md, "Fast path").

Compiled code is cached on the :class:`Program` instance, keyed by the
identity and length of its text list; programs are treated as immutable
after construction (the rewriter already builds new ``Program`` objects
rather than mutating in place).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.isa.encoding import TEXT_BASE
from repro.isa.opcodes import Fmt, Opcode, opcode_info
from repro.isa.semantics import _EVAL
from repro.program.program import Program
from repro.utils.bitops import effective_width, to_u32

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.functional import FunctionalSimulator

_M = 4294967295          # 32-bit mask literal inlined into generated code
_CACHE_ATTR = "_compiled_blocks_cache"

#: ALU expression templates; ``{a}``/``{b}`` are operand expressions that
#: are either register locals or literal ints, ``{sa}``/``{sb}`` their
#: signed (two's complement) views.
_EXPR: dict[Opcode, str] = {
    Opcode.ADD: "(({a}) + ({b})) & 4294967295",
    Opcode.ADDU: "(({a}) + ({b})) & 4294967295",
    Opcode.ADDI: "(({a}) + ({b})) & 4294967295",
    Opcode.ADDIU: "(({a}) + ({b})) & 4294967295",
    Opcode.SUB: "(({a}) - ({b})) & 4294967295",
    Opcode.SUBU: "(({a}) - ({b})) & 4294967295",
    Opcode.AND: "({a}) & ({b})",
    Opcode.ANDI: "({a}) & ({b})",
    Opcode.OR: "({a}) | ({b})",
    Opcode.ORI: "({a}) | ({b})",
    Opcode.XOR: "({a}) ^ ({b})",
    Opcode.XORI: "({a}) ^ ({b})",
    Opcode.NOR: "(~(({a}) | ({b}))) & 4294967295",
    Opcode.SLT: "(1 if {sa} < {sb} else 0)",
    Opcode.SLTI: "(1 if {sa} < {sb} else 0)",
    Opcode.SLTU: "(1 if ({a}) < ({b}) else 0)",
    Opcode.SLTIU: "(1 if ({a}) < ({b}) else 0)",
    Opcode.SLL: "(({a}) << (({b}) & 31)) & 4294967295",
    Opcode.SLLV: "(({a}) << (({b}) & 31)) & 4294967295",
    Opcode.SRL: "({a}) >> (({b}) & 31)",
    Opcode.SRLV: "({a}) >> (({b}) & 31)",
    Opcode.SRA: "({sa} >> (({b}) & 31)) & 4294967295",
    Opcode.SRAV: "({sa} >> (({b}) & 31)) & 4294967295",
    Opcode.MUL: "({sa} * {sb}) & 4294967295",
}

_BRANCH_COND: dict[Opcode, str] = {
    Opcode.BEQ: "({a}) == ({b})",
    Opcode.BNE: "({a}) != ({b})",
    Opcode.BLEZ: "{sa} <= 0",
    Opcode.BGTZ: "{sa} > 0",
    Opcode.BLTZ: "{sa} < 0",
    Opcode.BGEZ: "{sa} >= 0",
}

_LOAD_READERS = {
    Opcode.LW: ("read_word", 4, False),
    Opcode.LH: ("read_half", 2, True),
    Opcode.LHU: ("read_half", 2, False),
    Opcode.LB: ("read_byte", 1, True),
    Opcode.LBU: ("read_byte", 1, False),
}
_STORE_WRITERS = {
    Opcode.SW: "write_word",
    Opcode.SH: "write_half",
    Opcode.SB: "write_byte",
}

_TERMINATOR_FMTS = (Fmt.BR2, Fmt.BR1, Fmt.J, Fmt.JR, Fmt.JALR)


def _effective_width_u32(v: int) -> int:
    """:func:`repro.utils.bitops.effective_width`, specialized to inputs
    already in ``[0, 2**32)`` (the register-file invariant) and flattened
    to one call frame — this runs three times per profiled ALU
    instruction. For sign-bit-clear values the unsigned width
    ``max(1, bit_length)`` is the min; for sign-bit-set values the
    unsigned width is 32 and the signed width is
    ``bit_length(~s) + 1 == bit_length(v ^ 0xFFFFFFFF) + 1``."""
    if v & 2147483648:
        w = (v ^ 4294967295).bit_length() + 1
        return w if w < 32 else 32
    return v.bit_length() or 1


def _signed(expr: str) -> str:
    """Two's-complement view of an unsigned-32 expression (inline, no
    function call; operands hold values in ``[0, 2**32)`` by invariant)."""
    return f"((({expr}) ^ 2147483648) - 2147483648)"


class CompiledProgram:
    """The compiled form of one program's text segment.

    ``entries[pc]`` is ``(block_fn, block_len)`` when ``pc`` starts a
    compiled basic block, else ``None`` (non-leader index, or a block
    the compiler declined — e.g. one containing an opcode with no
    expression template and no ``_EVAL`` entry).
    """

    __slots__ = ("entries", "n_blocks", "n_compiled")

    def __init__(self, entries: list, n_blocks: int, n_compiled: int):
        self.entries = entries
        self.n_blocks = n_blocks
        self.n_compiled = n_compiled


class _BlockCodegen:
    """Generates the source of one basic block's specialized function."""

    def __init__(self, program: Program, start: int, end: int,
                 consts: dict[str, object], profile: bool = False):
        self.program = program
        self.start = start
        self.end = end                      # exclusive
        self.consts = consts                # module-level constant pool
        self.profile = profile              # emit bitwidth-maxima updates
        self.lines: list[str] = []
        self.defined: set[int] = set()      # regs live in locals
        self.loads: list[int] = []          # prologue register loads
        self.addr_exprs: list[str] = []     # per-instruction trace addrs
        self.ext_locals: dict[int, str] = {}  # conf -> prologue-bound eval
        self.tmp = 0

    # -- operand helpers ------------------------------------------------

    def _read(self, reg: int | None) -> str:
        if not reg:
            return "0"
        if reg not in self.defined:
            self.defined.add(reg)
            self.loads.append(reg)
        return f"r{reg}"

    def _write(self, reg: int | None) -> str | None:
        if not reg:
            return None
        self.defined.add(reg)
        return f"r{reg}"

    def _alu_operands(self, op: Opcode, a, b) -> dict[str, str]:
        """Expression fragments for an ALU template. ``a``/``b`` are
        register numbers (int, read) or ``("imm", value)`` literals."""
        out = {}
        for key, operand in (("a", a), ("b", b)):
            if isinstance(operand, tuple):
                value = operand[1]
                out[key] = repr(value)
                signed = value - 0x1_0000_0000 if value & 0x8000_0000 else value
                out["s" + key] = repr(signed)
            else:
                expr = self._read(operand)
                out[key] = expr
                out["s" + key] = "0" if expr == "0" else _signed(expr)
        return out

    def _emit_operand_width(self, index: int, ops, exprs) -> None:
        """Inline the reference loop's max-operand-width update for an ALU
        instruction: runtime ``effective_width`` calls for register
        operands, compile-time-folded widths for immediates and ``$zero``
        (``effective_width(0) == 1``)."""
        const_w = 0
        runtime: list[str] = []
        for key, operand in zip(("a", "b"), ops):
            if isinstance(operand, tuple):
                w = effective_width(operand[1])
                if w > const_w:
                    const_w = w
            elif exprs[key] == "0":
                if const_w < 1:
                    const_w = 1
            else:
                runtime.append(exprs[key])
        if not runtime:
            self.lines.append(
                f"if {const_w} > mow[{index}]: mow[{index}] = {const_w}"
            )
            return
        self.lines.append(f"pw = EW({runtime[0]})")
        if len(runtime) == 2:
            self.lines.append(f"pw2 = EW({runtime[1]})")
            self.lines.append("if pw2 > pw: pw = pw2")
        if const_w:
            self.lines.append(f"if pw < {const_w}: pw = {const_w}")
        self.lines.append(f"if pw > mow[{index}]: mow[{index}] = pw")

    # -- per-instruction emission --------------------------------------

    def emit(self, index: int) -> bool:
        """Emit code for the instruction at ``index``; False = give up."""
        instr = self.program.text[index]
        op = instr.op
        fmt = opcode_info(op).fmt
        addr_expr = "-1"

        if fmt is Fmt.R3 or fmt is Fmt.R2_IMM or fmt is Fmt.SHIFT_IMM:
            if fmt is Fmt.R3:
                dst = instr.rd
                a_op, b_op = instr.rs, instr.rt
            elif fmt is Fmt.R2_IMM:
                dst = instr.rt
                a_op, b_op = instr.rs, ("imm", to_u32(instr.imm or 0))
            else:  # SHIFT_IMM
                dst = instr.rd
                a_op, b_op = instr.rs, ("imm", instr.imm or 0)
            operands = self._alu_operands(op, a_op, b_op)
            template = _EXPR.get(op)
            if template is None:
                fn = _EVAL.get(op)
                if fn is None:
                    return False
                name = f"F_{op.name}"
                self.consts[name] = fn
                expr = f"{name}({operands['a']}, {operands['b']})"
            else:
                expr = template.format(**operands)
            if self.profile:
                # operand widths are read pre-execution: the write below
                # may clobber a source local when dst aliases an operand
                self._emit_operand_width(index, (a_op, b_op), operands)
            target = self._write(dst)
            if self.profile:
                if target is None:
                    # result width is profiled even for a $zero dst
                    target = f"a{self.tmp}"
                    self.tmp += 1
                self.lines.append(f"{target} = {expr}")
                self.lines.append(f"prw = EW({target})")
                self.lines.append(f"if prw > mrw[{index}]: mrw[{index}] = prw")
            elif target is not None:
                self.lines.append(f"{target} = {expr}")
        elif fmt is Fmt.LUI:
            value = to_u32((instr.imm or 0) << 16)
            target = self._write(instr.rt)
            if target is not None:
                self.lines.append(f"{target} = {value}")
        elif fmt is Fmt.MEM:
            base = self._read(instr.rs)
            off = instr.imm or 0
            a = f"a{self.tmp}"
            self.tmp += 1
            self.lines.append(f"{a} = (({base}) + ({off})) & 4294967295")
            addr_expr = a
            if instr.is_load:
                reader, _size, signed = _LOAD_READERS[op]
                target = self._write(instr.rt)
                dst = target or f"a{self.tmp}"
                if target is None:
                    self.tmp += 1
                self.lines.append(f"{dst} = mem.{reader}({a})")
                if signed:
                    bit, ext = (
                        (0x8000, 0xFFFF_0000) if op is Opcode.LH
                        else (0x80, 0xFFFF_FF00)
                    )
                    self.lines.append(f"if {dst} & {bit}:")
                    self.lines.append(f"    {dst} |= {ext}")
            else:
                value = self._read(instr.rt)
                writer = _STORE_WRITERS[op]
                self.lines.append(f"mem.{writer}({a}, {value})")
        elif fmt in (Fmt.BR2, Fmt.BR1):
            cond_t = _BRANCH_COND[op]
            a = self._read(instr.rs)
            b = self._read(instr.rt or 0) if fmt is Fmt.BR2 else "0"
            cond = cond_t.format(
                a=a, b=b, sa="0" if a == "0" else _signed(a),
            )
            target = self.program.target_index(instr)
            self._finish(index, f"return {target} if {cond} else {index + 1}")
        elif fmt is Fmt.J:
            target = self.program.target_index(instr)
            if op is Opcode.JAL:
                link = self._write(31)
                self.lines.append(f"{link} = {TEXT_BASE + 4 * (index + 1)}")
            self._finish(index, f"return {target}")
        elif fmt is Fmt.JR:
            src = self._read(instr.rs)
            self._finish(index, f"return IOF({src})")
        elif fmt is Fmt.JALR:
            src = self._read(instr.rs)
            t = f"a{self.tmp}"
            self.tmp += 1
            self.lines.append(f"{t} = IOF({src})")
            link = self._write(instr.rd)
            if link is not None:
                self.lines.append(f"{link} = {TEXT_BASE + 4 * (index + 1)}")
            self._finish(index, f"return {t}")
        elif fmt is Fmt.EXT:
            a = self._read(instr.rs)
            b = self._read(instr.rt or 0)
            conf = instr.conf if instr.conf is not None else -1
            name = self.ext_locals.get(conf)
            if name is None:
                name = f"x{conf}" if conf >= 0 else "x_m1"
                self.ext_locals[conf] = name
            if self.profile:
                # ext profiles operand widths only (no result width)
                self._emit_operand_width(
                    index, (instr.rs, instr.rt or 0), {"a": a, "b": b}
                )
            target = self._write(instr.rd)
            if target is None:
                # evaluate() is still called for a $zero dst, like the
                # reference loop (it may raise; discarding is not eliding)
                target = f"a{self.tmp}"
                self.tmp += 1
            self.lines.append(f"{target} = {name}({a}, {b})")
        elif op is Opcode.HALT:
            self._finish(index, "return -1")
        elif op is Opcode.NOP:
            pass
        else:
            return False

        self.addr_exprs.append(addr_expr)
        return True

    # -- block assembly -------------------------------------------------

    def _finish(self, index: int, return_stmt: str) -> None:
        """Write-back + trace flush + return (terminator path)."""
        self.addr_exprs.append("-1")
        self._epilogue()
        self.addr_exprs.pop()
        self.lines.append(return_stmt)

    def _epilogue(self) -> None:
        for reg in sorted(self.defined):
            self.lines.append(f"regs[{reg}] = r{reg}")
        length = self.end - self.start
        idx_name = f"I{self.start}"
        self.consts[idx_name] = tuple(range(self.start, self.end))
        addrs = self.addr_exprs + ["-1"] * (length - len(self.addr_exprs))
        if all(a == "-1" for a in addrs):
            adr_name = f"A{self.start}"
            self.consts[adr_name] = (-1,) * length
            adr_expr = adr_name
        else:
            adr_expr = "(" + ", ".join(addrs) + ("," if length == 1 else "") + ")"
        self.lines.append("if ti is not None:")
        self.lines.append(f"    ti({idx_name})")
        self.lines.append(f"    ta({adr_expr})")

    def render(self) -> str | None:
        """The full function source, or None if the block is uncompilable."""
        end_reached = True
        for index in range(self.start, self.end):
            if not self.emit(index):
                return None
            fmt = opcode_info(self.program.text[index].op).fmt
            if fmt in _TERMINATOR_FMTS or self.program.text[index].op is Opcode.HALT:
                end_reached = False
        if end_reached:
            # fall-through block (next leader follows immediately)
            self._epilogue()
            self.lines.append(f"return {self.end}")
        prologue = [f"r{reg} = regs[{reg}]" for reg in self.loads]
        prologue += [
            f"{name} = xe[{conf}].evaluate"
            for conf, name in sorted(self.ext_locals.items())
        ]
        body = prologue + self.lines
        text = "\n    ".join(body) if body else "pass"
        args = (
            "regs, mem, ti, ta, xe, mow, mrw" if self.profile
            else "regs, mem, ti, ta, xe"
        )
        return f"def B{self.start}({args}):\n    {text}\n"


def _block_starts(program: Program) -> list[int]:
    """Leader indices: entry, every label, every branch target, and every
    instruction following a control transfer or halt."""
    n = len(program.text)
    leaders = {0}
    for idx in program.labels.values():
        if 0 <= idx < n:
            leaders.add(idx)
    for i, instr in enumerate(program.text):
        fmt = opcode_info(instr.op).fmt
        if fmt in _TERMINATOR_FMTS or instr.op is Opcode.HALT:
            if i + 1 < n:
                leaders.add(i + 1)
            if fmt in (Fmt.BR2, Fmt.BR1, Fmt.J):
                target = program.target_index(instr)
                if 0 <= target < n:
                    leaders.add(target)
    return sorted(leaders)


def compile_blocks(program: Program, profile: bool = False) -> CompiledProgram:
    """Compile ``program``'s basic blocks (cached on the instance).

    The plain and profiling variants are compiled and cached
    independently — profiling blocks carry the inline bitwidth updates
    and take the two maxima arrays as extra arguments."""
    cache = program.__dict__.get(_CACHE_ATTR)
    if cache is None:
        cache = {}
        program.__dict__[_CACHE_ATTR] = cache
    cached = cache.get(profile)
    if cached is not None:
        text_id, n, compiled = cached
        if text_id == id(program.text) and n == len(program.text):
            return compiled

    n = len(program.text)
    starts = _block_starts(program)
    consts: dict[str, object] = {
        "IOF": program.index_of_pc,
        "SimulationError": SimulationError,
    }
    if profile:
        consts["EW"] = _effective_width_u32
    sources: list[str] = []
    spans: list[tuple[int, int]] = []
    for bi, start in enumerate(starts):
        limit = starts[bi + 1] if bi + 1 < len(starts) else n
        end = limit
        for i in range(start, limit):
            instr = program.text[i]
            fmt = opcode_info(instr.op).fmt
            if fmt in _TERMINATOR_FMTS or instr.op is Opcode.HALT:
                end = i + 1
                break
        gen = _BlockCodegen(program, start, end, consts, profile)
        src = gen.render()
        if src is not None:
            sources.append(src)
            spans.append((start, end))

    entries: list = [None] * n
    n_compiled = 0
    if sources:
        namespace = dict(consts)
        tag = ":profile" if profile else ""
        code = compile(
            "\n".join(sources), f"<t1000-blocks:{program.name}{tag}>", "exec"
        )
        exec(code, namespace)  # noqa: S102 - trusted, self-generated source
        for start, end in spans:
            entries[start] = (namespace[f"B{start}"], end - start)
            n_compiled += 1

    compiled = CompiledProgram(entries, len(starts), n_compiled)
    cache[profile] = (id(program.text), n, compiled)
    return compiled


def run_compiled(
    sim: "FunctionalSimulator",
    max_steps: int,
    collect_trace: bool,
    entry_label: str,
    profile: bool = False,
):
    """Execute ``sim.program`` through the block-compiled fast path.

    Blocks the compiler declined, dynamic-jump entries into the
    middle of a block, and the final instructions of a near-exhausted
    step budget all run through the reference single-step interpreter
    (:meth:`FunctionalSimulator._step_one`), so observable behaviour —
    registers, memory, trace, step counts, and error conditions — is
    identical to the reference loop.

    With ``profile``, execution counts are tallied one increment per
    *block* execution (a basic block is straight-line: every entry runs
    all of it) and scattered to per-instruction counts at the end; the
    bitwidth maxima are updated inline by the profiling block variant.
    Fallback single steps profile individually via ``_step_one``.
    """
    from repro.program.program import STACK_TOP
    from repro.sim.functional import BitwidthProfile, ExecutionResult
    from repro.sim.trace import DynTrace

    program = sim.program
    compiled = compile_blocks(program, profile)
    entries = compiled.entries
    n = len(program.text)
    regs = [0] * 32
    regs[29] = STACK_TOP
    mem = sim.memory
    trace = DynTrace() if collect_trace else None
    ti = trace.indices.extend if trace is not None else None
    ta = trace.addrs.extend if trace is not None else None
    xe = sim.ext_defs

    counts = [0] * n if profile else None
    widths = BitwidthProfile.empty(n) if profile else None
    block_execs = [0] * n if profile else None

    pc = program.labels.get(entry_label, 0)
    steps = 0
    halted = False
    if profile:
        mow = widths.max_operand_width
        mrw = widths.max_result_width
        while True:
            if pc == -1:
                halted = True
                break
            if steps >= max_steps:
                break
            if not 0 <= pc < n:
                raise SimulationError(f"PC out of text segment: index {pc}")
            entry = entries[pc]
            if entry is not None and steps + entry[1] <= max_steps:
                steps += entry[1]
                block_execs[pc] += 1
                pc = entry[0](regs, mem, ti, ta, xe, mow, mrw)
            else:
                pc = sim._step_one(pc, regs, trace, counts, widths)
                steps += 1
        for start, entry in enumerate(entries):
            if entry is not None:
                c = block_execs[start]
                if c:
                    for i in range(start, start + entry[1]):
                        counts[i] += c
    else:
        while True:
            if pc == -1:
                halted = True
                break
            if steps >= max_steps:
                break
            if not 0 <= pc < n:
                raise SimulationError(f"PC out of text segment: index {pc}")
            entry = entries[pc]
            if entry is not None and steps + entry[1] <= max_steps:
                steps += entry[1]
                pc = entry[0](regs, mem, ti, ta, xe)
            else:
                # uncompiled block, mid-block entry from a dynamic
                # jump, or fewer than a block's worth of budget left
                pc = sim._step_one(pc, regs, trace)
                steps += 1

    if not halted and steps >= max_steps:
        raise SimulationError(f"program did not halt within {max_steps} steps")

    return ExecutionResult(
        steps=steps,
        halted=halted,
        regs=regs,
        memory=mem,
        trace=trace,
        exec_counts=counts,
        bitwidths=widths,
        program=program,
    )
