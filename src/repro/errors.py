"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AssemblerError(ReproError):
    """Raised for syntactic or semantic errors in assembly source.

    Carries an optional source line number for diagnostics.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded/decoded as 32 bits."""


class SimulationError(ReproError):
    """Raised for runtime faults during simulation (bad PC, misalignment)."""


class MemoryFault(SimulationError):
    """Raised on access to an unmapped or misaligned memory address."""

    def __init__(self, message: str, address: int | None = None):
        self.address = address
        super().__init__(message)


class InvalidProgramError(ReproError):
    """Raised when a Program violates a structural invariant (e.g. an
    undefined label, a branch out of range, or a malformed basic block)."""


class ExtInstError(ReproError):
    """Raised when an extended-instruction definition or rewrite is invalid
    (constraint violation, failed semantic-equivalence validation, ...)."""


class ConfigurationError(ReproError):
    """Raised for invalid machine/experiment configuration values."""
