"""AST node definitions for minic."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    """Base class; every node records its source line for diagnostics."""

    line: int


# ---------------------------------------------------------------------- expr


@dataclass(frozen=True)
class IntLit(Node):
    value: int


@dataclass(frozen=True)
class Var(Node):
    name: str


@dataclass(frozen=True)
class Index(Node):
    array: str
    index: "Expr"


@dataclass(frozen=True)
class UnOp(Node):
    op: str          # "-", "~", "!"
    operand: "Expr"


@dataclass(frozen=True)
class BinOp(Node):
    op: str          # C binary operator
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call(Node):
    name: str
    args: tuple["Expr", ...]


Expr = IntLit | Var | Index | UnOp | BinOp | Call


# ---------------------------------------------------------------------- stmt


@dataclass(frozen=True)
class Declare(Node):
    name: str
    init: Expr | None


@dataclass(frozen=True)
class Assign(Node):
    target: Var | Index
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: Expr


@dataclass(frozen=True)
class If(Node):
    cond: Expr
    then: "Block"
    orelse: "Block | None"


@dataclass(frozen=True)
class While(Node):
    cond: Expr
    body: "Block"


@dataclass(frozen=True)
class For(Node):
    init: "Stmt | None"
    cond: Expr | None
    step: "Stmt | None"
    body: "Block"


@dataclass(frozen=True)
class Return(Node):
    value: Expr | None


@dataclass(frozen=True)
class Block(Node):
    statements: tuple["Stmt", ...]


Stmt = Declare | Assign | ExprStmt | If | While | For | Return | Block


# ------------------------------------------------------------------ toplevel


@dataclass(frozen=True)
class GlobalVar(Node):
    name: str
    size: int | None          # None = scalar; int = array length
    init: tuple[int, ...] = ()


@dataclass(frozen=True)
class FuncDef(Node):
    name: str
    params: tuple[str, ...]
    body: Block
    returns_value: bool = True


@dataclass(frozen=True)
class TranslationUnit(Node):
    globals: tuple[GlobalVar, ...] = field(default=())
    functions: tuple[FuncDef, ...] = field(default=())

    def function(self, name: str) -> FuncDef | None:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None
