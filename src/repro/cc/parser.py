"""Recursive-descent parser for minic.

Grammar (C subset)::

    unit      := (global | funcdef)*
    global    := "int" ident ("[" int "]")? ("=" init)? ";"
    init      := int | "{" int ("," int)* "}"
    funcdef   := ("int" | "void") ident "(" params? ")" block
    params    := "int" ident ("," "int" ident)*
    block     := "{" stmt* "}"
    stmt      := "int" ident ("=" expr)? ";"
               | lvalue assignop expr ";"
               | lvalue ("++" | "--") ";"
               | "if" "(" expr ")" block ("else" (block | ifstmt))?
               | "while" "(" expr ")" block
               | "for" "(" simple? ";" expr? ";" simple? ")" block
               | "return" expr? ";"
               | expr ";"
               | block
    expr      := C expression grammar: ?: excluded; "||" down to primary
"""

from __future__ import annotations

from repro.cc import ast
from repro.cc.lexer import CompileError, Token, tokenize

# binary operator precedence (higher binds tighter); matches C
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tok
        self.pos += 1
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.tok
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text or kind
            raise CompileError(
                f"expected {want!r}, found {self.tok.text!r}", self.tok.line
            )
        return tok

    def peek_op(self, text: str) -> bool:
        return self.tok.kind == "op" and self.tok.text == text

    # ------------------------------------------------------------------
    # toplevel

    def parse_unit(self) -> ast.TranslationUnit:
        line = self.tok.line
        globals_: list[ast.GlobalVar] = []
        functions: list[ast.FuncDef] = []
        while self.tok.kind != "eof":
            kw = self.expect("kw")
            if kw.text not in ("int", "void"):
                raise CompileError(f"expected declaration, got {kw.text!r}",
                                   kw.line)
            name = self.expect("ident")
            if self.peek_op("("):
                functions.append(
                    self._funcdef(name.text, kw.text == "int", kw.line)
                )
            else:
                if kw.text == "void":
                    raise CompileError("void variables not allowed", kw.line)
                globals_.append(self._global(name.text, kw.line))
        return ast.TranslationUnit(
            line=line, globals=tuple(globals_), functions=tuple(functions)
        )

    def _global(self, name: str, line: int) -> ast.GlobalVar:
        size: int | None = None
        infer_size = False
        if self.accept("op", "["):
            if self.accept("op", "]"):
                infer_size = True   # int a[] = {...}
            else:
                size = self.expect("int").value
                self.expect("op", "]")
                if size <= 0:
                    raise CompileError("array size must be positive", line)
        init: tuple[int, ...] = ()
        if self.accept("op", "="):
            if self.accept("op", "{"):
                values = [self._signed_int()]
                while self.accept("op", ","):
                    values.append(self._signed_int())
                self.expect("op", "}")
                init = tuple(values)
                if size is None:
                    size = len(init)
                if len(init) > size:
                    raise CompileError("too many initialisers", line)
            else:
                init = (self._signed_int(),)
        if infer_size and size is None:
            raise CompileError("array with [] needs an initialiser", line)
        self.expect("op", ";")
        return ast.GlobalVar(line=line, name=name, size=size, init=init)

    def _signed_int(self) -> int:
        neg = self.accept("op", "-") is not None
        value = self.expect("int").value
        return -value if neg else value

    def _funcdef(self, name: str, returns_value: bool, line: int) -> ast.FuncDef:
        self.expect("op", "(")
        params: list[str] = []
        if not self.peek_op(")"):
            if self.accept("kw", "void") is None:
                while True:
                    self.expect("kw", "int")
                    params.append(self.expect("ident").text)
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        body = self._block()
        return ast.FuncDef(
            line=line, name=name, params=tuple(params), body=body,
            returns_value=returns_value,
        )

    # ------------------------------------------------------------------
    # statements

    def _block(self) -> ast.Block:
        start = self.expect("op", "{")
        statements: list[ast.Stmt] = []
        while not self.accept("op", "}"):
            if self.tok.kind == "eof":
                raise CompileError("unterminated block", start.line)
            statements.append(self._statement())
        return ast.Block(line=start.line, statements=tuple(statements))

    def _statement(self) -> ast.Stmt:
        tok = self.tok
        if tok.kind == "op" and tok.text == "{":
            return self._block()
        if tok.kind == "kw":
            if tok.text == "int":
                stmt = self._declaration()
                self.expect("op", ";")
                return stmt
            if tok.text == "if":
                return self._if()
            if tok.text == "while":
                return self._while()
            if tok.text == "for":
                return self._for()
            if tok.text == "return":
                self.advance()
                value = None if self.peek_op(";") else self._expr()
                self.expect("op", ";")
                return ast.Return(line=tok.line, value=value)
        stmt = self._simple_statement()
        self.expect("op", ";")
        return stmt

    def _declaration(self) -> ast.Declare:
        line = self.expect("kw", "int").line
        name = self.expect("ident").text
        init = self._expr() if self.accept("op", "=") else None
        return ast.Declare(line=line, name=name, init=init)

    def _simple_statement(self) -> ast.Stmt:
        """Assignment, compound assignment, ++/--, or expression."""
        line = self.tok.line
        expr = self._expr()
        if isinstance(expr, (ast.Var, ast.Index)):
            for op in _ASSIGN_OPS:
                if self.peek_op(op):
                    self.advance()
                    value = self._expr()
                    if op != "=":
                        value = ast.BinOp(
                            line=line, op=op[:-1], left=expr, right=value
                        )
                    return ast.Assign(line=line, target=expr, value=value)
            if self.peek_op("++") or self.peek_op("--"):
                op = self.advance().text
                one = ast.IntLit(line=line, value=1)
                return ast.Assign(
                    line=line,
                    target=expr,
                    value=ast.BinOp(line=line, op=op[0], left=expr, right=one),
                )
        return ast.ExprStmt(line=line, expr=expr)

    def _if(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        then = self._block()
        orelse: ast.Block | None = None
        if self.accept("kw", "else"):
            if self.tok.kind == "kw" and self.tok.text == "if":
                nested = self._if()
                orelse = ast.Block(line=nested.line, statements=(nested,))
            else:
                orelse = self._block()
        return ast.If(line=line, cond=cond, then=then, orelse=orelse)

    def _while(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        return ast.While(line=line, cond=cond, body=self._block())

    def _for(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init: ast.Stmt | None = None
        if not self.peek_op(";"):
            if self.tok.kind == "kw" and self.tok.text == "int":
                init = self._declaration()
            else:
                init = self._simple_statement()
        self.expect("op", ";")
        cond = None if self.peek_op(";") else self._expr()
        self.expect("op", ";")
        step: ast.Stmt | None = None
        if not self.peek_op(")"):
            step = self._simple_statement()
        self.expect("op", ")")
        return ast.For(line=line, init=init, cond=cond, step=step,
                       body=self._block())

    # ------------------------------------------------------------------
    # expressions

    def _expr(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._unary()
        left = self._binary(level + 1)
        ops = _PRECEDENCE[level]
        while self.tok.kind == "op" and self.tok.text in ops:
            # don't confuse "x = ..." handled by statements; '=' is not here
            op = self.advance()
            right = self._binary(level + 1)
            left = ast.BinOp(line=op.line, op=op.text, left=left, right=right)
        return left

    def _unary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == "op" and tok.text in ("-", "~", "!"):
            self.advance()
            return ast.UnOp(line=tok.line, op=tok.text, operand=self._unary())
        if tok.kind == "op" and tok.text == "+":
            self.advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            inner = self._expr()
            self.expect("op", ")")
            return inner
        if tok.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: list[ast.Expr] = []
                if not self.peek_op(")"):
                    args.append(self._expr())
                    while self.accept("op", ","):
                        args.append(self._expr())
                self.expect("op", ")")
                return ast.Call(line=tok.line, name=tok.text, args=tuple(args))
            if self.accept("op", "["):
                index = self._expr()
                self.expect("op", "]")
                return ast.Index(line=tok.line, array=tok.text, index=index)
            return ast.Var(line=tok.line, name=tok.text)
        raise CompileError(f"unexpected token {tok.text!r}", tok.line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse minic source into a translation unit."""
    return _Parser(tokenize(source)).parse_unit()
