"""The minic compiler driver."""

from __future__ import annotations

from repro.cc.codegen import CodeGenerator
from repro.cc.parser import parse
from repro.program.program import Program


def compile_source(
    source: str, name: str = "minic", optimize: bool = False
) -> Program:
    """Compile minic source to a validated, runnable :class:`Program`.

    Execution begins at ``main`` (the label, which calls ``fn_main``);
    returning from ``main`` halts the machine with the return value in
    ``$v0``. Globals are visible as data symbols named ``g_<name>``.
    With ``optimize=True`` the :mod:`repro.opt` pass pipeline (copy
    propagation, store-to-load forwarding, dead-code elimination) cleans
    up the naive codegen output.
    """
    unit = parse(source)
    builder = CodeGenerator(unit, name=name).generate()
    program = builder.build()
    if optimize:
        from repro.opt import optimize_program

        program, _ = optimize_program(program)
    return program


def compile_and_run(source: str, name: str = "minic", **run_kwargs):
    """Compile and functionally execute; returns the ExecutionResult."""
    from repro.sim.functional import FunctionalSimulator

    program = compile_source(source, name=name)
    return FunctionalSimulator(program).run(**run_kwargs)
