"""minic — a small C-like compiler targeting the T1000 ISA.

The paper's toolflow operates on *compiled* binaries: "an extended
instruction is created at compile time by converting an appropriate
instruction sequence in the compiled code" (§2.1). This package provides
that front end, so kernels can be written in a C subset instead of
assembly, and the extraction machinery sees realistic compiler output.

Supported language (see :mod:`repro.cc.parser` for the grammar):

- types: ``int`` (32-bit) scalars and global one-dimensional arrays;
- functions with parameters and return values, recursion allowed;
- statements: declarations with initialisers, assignment (incl. array
  element), ``if``/``else``, ``while``, ``for``, ``return``, blocks;
- expressions: full C operator set over ints (arithmetic, shifts,
  comparisons, bitwise, logical with short-circuit), unary ``- ~ !``,
  array indexing, and calls.

Use :func:`compile_source` to produce a ready-to-run
:class:`~repro.program.program.Program` (execution starts at ``main``;
returning from ``main`` halts with the result in ``$v0``).
"""

from repro.cc.compiler import compile_source
from repro.cc.lexer import tokenize
from repro.cc.parser import parse

__all__ = ["compile_source", "tokenize", "parse"]
