"""Code generation: minic AST -> T1000 assembly.

A deliberately straightforward one-pass generator in the style of an
unoptimising C compiler (the paper's toolchain compiled MediaBench with
ordinary compilers):

- expression evaluation on a register stack ``$t0..$t7`` (expressions
  nesting deeper than 8 temporaries are rejected);
- locals and parameters live in the stack frame, addressed off ``$sp``;
- arguments pass in ``$a0-$a3``, results in ``$v0``;
- recursion works: ``$ra`` and live temporaries are saved around calls.

The generated code is exactly the kind of input the extended-instruction
extractor targets: dependent ALU chains with memory and control around
them.
"""

from __future__ import annotations

from repro.asm.builder import AsmBuilder
from repro.cc import ast
from repro.cc.lexer import CompileError

_TEMPS = [f"$t{i}" for i in range(8)]
_ARG_REGS = ["$a0", "$a1", "$a2", "$a3"]

_SIMPLE_BINOPS = {
    "+": "addu", "-": "subu", "&": "and", "|": "or", "^": "xor",
    "<<": "sllv", ">>": "srav", "*": "mul", "/": "div", "%": "rem",
}


class _FuncContext:
    def __init__(self, fn: ast.FuncDef, n_slots: int):
        self.fn = fn
        self.n_slots = n_slots
        # frame: [locals (n_slots words)] [saved $ra] -> frame_size bytes
        self.frame_size = 4 * n_slots + 4
        self.ra_offset = 4 * n_slots
        self.scopes: list[dict[str, int]] = [{}]
        self.next_slot = 0
        self.depth = 0          # expression temp-stack depth
        self.epilogue_label = ""

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, line: int) -> int:
        if name in self.scopes[-1]:
            raise CompileError(f"redeclaration of {name!r}", line)
        if self.next_slot >= self.n_slots:
            raise CompileError("internal: local slot overflow", line)
        slot = self.next_slot
        self.next_slot += 1
        self.scopes[-1][name] = slot
        return slot

    def lookup(self, name: str) -> int | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None


def _count_locals(node) -> int:
    """Total Declare statements in a function body (slots never reused)."""
    if isinstance(node, ast.Declare):
        return 1
    total = 0
    if isinstance(node, ast.Block):
        total += sum(_count_locals(s) for s in node.statements)
    elif isinstance(node, ast.If):
        total += _count_locals(node.then)
        if node.orelse:
            total += _count_locals(node.orelse)
    elif isinstance(node, ast.While):
        total += _count_locals(node.body)
    elif isinstance(node, ast.For):
        for part in (node.init, node.step):
            if part is not None:
                total += _count_locals(part)
        total += _count_locals(node.body)
    return total


class CodeGenerator:
    """Generates a complete program from a translation unit."""

    def __init__(self, unit: ast.TranslationUnit, name: str = "minic"):
        self.unit = unit
        self.b = AsmBuilder(name)
        self._functions = {fn.name: fn for fn in unit.functions}
        self._globals: dict[str, ast.GlobalVar] = {
            g.name: g for g in unit.globals
        }

    # ------------------------------------------------------------------

    def generate(self) -> AsmBuilder:
        if "main" not in self._functions:
            raise CompileError("no main() function", self.unit.line)
        for g in self.unit.globals:
            size = g.size or 1
            values = list(g.init) + [0] * (size - len(g.init))
            self.b.word(f"g_{g.name}", values)

        # entry stub: call main, halt with its result in $v0
        self.b.label("main")
        self.b.ins("jal fn_main", "halt")
        for fn in self.unit.functions:
            self._function(fn)
        return self.b

    # ------------------------------------------------------------------

    def _function(self, fn: ast.FuncDef) -> None:
        if len(fn.params) > len(_ARG_REGS):
            raise CompileError(
                f"{fn.name}: at most {len(_ARG_REGS)} parameters", fn.line
            )
        ctx = _FuncContext(fn, _count_locals(fn.body) + len(fn.params))
        ctx.epilogue_label = self.b.fresh(f"ret_{fn.name}")
        b = self.b
        b.label(f"fn_{fn.name}")
        b.ins(f"addiu $sp, $sp, {-ctx.frame_size}")
        b.ins(f"sw $ra, {ctx.ra_offset}($sp)")
        for i, param in enumerate(fn.params):
            slot = ctx.declare(param, fn.line)
            b.ins(f"sw {_ARG_REGS[i]}, {4 * slot}($sp)")
        self._block(ctx, fn.body, new_scope=False)
        b.ins("li $v0, 0")          # fall-off-the-end default return
        b.label(ctx.epilogue_label)
        b.ins(f"lw $ra, {ctx.ra_offset}($sp)")
        b.ins(f"addiu $sp, $sp, {ctx.frame_size}")
        b.ins("jr $ra")

    # ------------------------------------------------------------------
    # statements

    def _block(self, ctx: _FuncContext, block: ast.Block,
               new_scope: bool = True) -> None:
        if new_scope:
            ctx.push_scope()
        for stmt in block.statements:
            self._statement(ctx, stmt)
        if new_scope:
            ctx.pop_scope()

    def _statement(self, ctx: _FuncContext, stmt: ast.Stmt) -> None:
        b = self.b
        if isinstance(stmt, ast.Block):
            self._block(ctx, stmt)
        elif isinstance(stmt, ast.Declare):
            slot = ctx.declare(stmt.name, stmt.line)
            if stmt.init is not None:
                reg = self._expr(ctx, stmt.init)
                b.ins(f"sw {reg}, {4 * slot}($sp)")
                self._pop(ctx)
        elif isinstance(stmt, ast.Assign):
            self._assign(ctx, stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(ctx, stmt.expr)
            self._pop(ctx)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self._expr(ctx, stmt.value)
                b.ins(f"move $v0, {reg}")
                self._pop(ctx)
            b.ins(f"b {ctx.epilogue_label}")
        elif isinstance(stmt, ast.If):
            self._if(ctx, stmt)
        elif isinstance(stmt, ast.While):
            self._while(ctx, stmt)
        elif isinstance(stmt, ast.For):
            self._for(ctx, stmt)
        else:  # pragma: no cover
            raise CompileError(f"unknown statement {stmt!r}", stmt.line)

    def _assign(self, ctx: _FuncContext, stmt: ast.Assign) -> None:
        b = self.b
        value_reg = self._expr(ctx, stmt.value)
        target = stmt.target
        if isinstance(target, ast.Var):
            slot = ctx.lookup(target.name)
            if slot is not None:
                b.ins(f"sw {value_reg}, {4 * slot}($sp)")
            else:
                g = self._global_or_fail(target.name, target.line, scalar=True)
                b.ins(f"la $t8, g_{g.name}", f"sw {value_reg}, 0($t8)")
        else:
            g = self._global_or_fail(target.array, target.line, scalar=False)
            index_reg = self._expr(ctx, target.index)
            b.ins(
                f"sll $t8, {index_reg}, 2",
                f"la $t9, g_{g.name}",
                "addu $t8, $t8, $t9",
                f"sw {value_reg}, 0($t8)",
            )
            self._pop(ctx)
        self._pop(ctx)

    def _if(self, ctx: _FuncContext, stmt: ast.If) -> None:
        b = self.b
        else_label = b.fresh("else")
        end_label = b.fresh("endif")
        cond = self._expr(ctx, stmt.cond)
        b.ins(f"beq {cond}, $zero, {else_label if stmt.orelse else end_label}")
        self._pop(ctx)
        self._block(ctx, stmt.then)
        if stmt.orelse:
            b.ins(f"b {end_label}")
            b.label(else_label)
            self._block(ctx, stmt.orelse)
        b.label(end_label)

    def _while(self, ctx: _FuncContext, stmt: ast.While) -> None:
        b = self.b
        head = b.fresh("while")
        end = b.fresh("endwhile")
        b.label(head)
        cond = self._expr(ctx, stmt.cond)
        b.ins(f"beq {cond}, $zero, {end}")
        self._pop(ctx)
        self._block(ctx, stmt.body)
        b.ins(f"b {head}")
        b.label(end)

    def _for(self, ctx: _FuncContext, stmt: ast.For) -> None:
        b = self.b
        ctx.push_scope()            # for-init declarations scope
        if stmt.init is not None:
            self._statement(ctx, stmt.init)
        head = b.fresh("for")
        end = b.fresh("endfor")
        b.label(head)
        if stmt.cond is not None:
            cond = self._expr(ctx, stmt.cond)
            b.ins(f"beq {cond}, $zero, {end}")
            self._pop(ctx)
        self._block(ctx, stmt.body)
        if stmt.step is not None:
            self._statement(ctx, stmt.step)
        b.ins(f"b {head}")
        b.label(end)
        ctx.pop_scope()

    # ------------------------------------------------------------------
    # expressions (register-stack discipline)

    def _push(self, ctx: _FuncContext, line: int) -> str:
        if ctx.depth >= len(_TEMPS):
            raise CompileError(
                "expression too deeply nested (8 temporaries)", line
            )
        reg = _TEMPS[ctx.depth]
        ctx.depth += 1
        return reg

    def _pop(self, ctx: _FuncContext) -> None:
        assert ctx.depth > 0
        ctx.depth -= 1

    def _expr(self, ctx: _FuncContext, expr: ast.Expr) -> str:
        """Generate code leaving the value in the returned temp register
        (pushed on the expression stack)."""
        b = self.b
        if isinstance(expr, ast.IntLit):
            reg = self._push(ctx, expr.line)
            b.ins(f"li {reg}, {expr.value}")
            return reg
        if isinstance(expr, ast.Var):
            reg = self._push(ctx, expr.line)
            slot = ctx.lookup(expr.name)
            if slot is not None:
                b.ins(f"lw {reg}, {4 * slot}($sp)")
            else:
                g = self._global_or_fail(expr.name, expr.line, scalar=True)
                b.ins(f"la $t8, g_{g.name}", f"lw {reg}, 0($t8)")
            return reg
        if isinstance(expr, ast.Index):
            g = self._global_or_fail(expr.array, expr.line, scalar=False)
            index_reg = self._expr(ctx, expr.index)
            b.ins(
                f"sll $t8, {index_reg}, 2",
                f"la $t9, g_{g.name}",
                "addu $t8, $t8, $t9",
                f"lw {index_reg}, 0($t8)",
            )
            return index_reg
        if isinstance(expr, ast.UnOp):
            return self._unop(ctx, expr)
        if isinstance(expr, ast.BinOp):
            return self._binop(ctx, expr)
        if isinstance(expr, ast.Call):
            return self._call(ctx, expr)
        raise CompileError(f"unknown expression {expr!r}", expr.line)

    def _unop(self, ctx: _FuncContext, expr: ast.UnOp) -> str:
        b = self.b
        reg = self._expr(ctx, expr.operand)
        if expr.op == "-":
            b.ins(f"subu {reg}, $zero, {reg}")
        elif expr.op == "~":
            b.ins(f"nor {reg}, {reg}, $zero")
        else:  # "!"
            b.ins(f"sltiu {reg}, {reg}, 1")
        return reg

    def _binop(self, ctx: _FuncContext, expr: ast.BinOp) -> str:
        b = self.b
        if expr.op in ("&&", "||"):
            return self._short_circuit(ctx, expr)
        left = self._expr(ctx, expr.left)
        right = self._expr(ctx, expr.right)
        op = expr.op
        if op in _SIMPLE_BINOPS:
            b.ins(f"{_SIMPLE_BINOPS[op]} {left}, {left}, {right}")
        elif op == "<":
            b.ins(f"slt {left}, {left}, {right}")
        elif op == ">":
            b.ins(f"slt {left}, {right}, {left}")
        elif op == "<=":
            b.ins(f"slt {left}, {right}, {left}", f"xori {left}, {left}, 1")
        elif op == ">=":
            b.ins(f"slt {left}, {left}, {right}", f"xori {left}, {left}, 1")
        elif op == "==":
            b.ins(f"xor {left}, {left}, {right}", f"sltiu {left}, {left}, 1")
        elif op == "!=":
            b.ins(f"xor {left}, {left}, {right}",
                  f"sltu {left}, $zero, {left}")
        else:  # pragma: no cover
            raise CompileError(f"unknown operator {op!r}", expr.line)
        self._pop(ctx)
        return left

    def _short_circuit(self, ctx: _FuncContext, expr: ast.BinOp) -> str:
        b = self.b
        done = b.fresh("sc")
        left = self._expr(ctx, expr.left)
        b.ins(f"sltu {left}, $zero, {left}")      # normalise to 0/1
        if expr.op == "&&":
            b.ins(f"beq {left}, $zero, {done}")
        else:
            b.ins(f"bne {left}, $zero, {done}")
        right = self._expr(ctx, expr.right)
        b.ins(f"sltu {right}, $zero, {right}",
              f"move {left}, {right}")
        self._pop(ctx)
        b.label(done)
        return left

    def _call(self, ctx: _FuncContext, expr: ast.Call) -> str:
        b = self.b
        fn = self._functions.get(expr.name)
        if fn is None:
            raise CompileError(f"call to undefined function {expr.name!r}",
                               expr.line)
        if len(expr.args) != len(fn.params):
            raise CompileError(
                f"{expr.name} expects {len(fn.params)} arguments, "
                f"got {len(expr.args)}", expr.line,
            )
        live = ctx.depth
        # evaluate arguments onto the temp stack
        for arg in expr.args:
            self._expr(ctx, arg)
        # save live temps (pre-call values) below $sp, then marshal args
        save_bytes = 4 * live
        if save_bytes:
            b.ins(f"addiu $sp, $sp, {-save_bytes}")
            for i in range(live):
                b.ins(f"sw {_TEMPS[i]}, {4 * i}($sp)")
        for i in range(len(expr.args)):
            b.ins(f"move {_ARG_REGS[i]}, {_TEMPS[live + i]}")
        b.ins(f"jal fn_{expr.name}")
        if save_bytes:
            for i in range(live):
                b.ins(f"lw {_TEMPS[i]}, {4 * i}($sp)")
            b.ins(f"addiu $sp, $sp, {save_bytes}")
        for _ in expr.args:
            self._pop(ctx)
        reg = self._push(ctx, expr.line)
        b.ins(f"move {reg}, $v0")
        return reg

    # ------------------------------------------------------------------

    def _global_or_fail(self, name: str, line: int, scalar: bool):
        g = self._globals.get(name)
        if g is None:
            raise CompileError(f"undefined variable {name!r}", line)
        if scalar and g.size is not None and g.size > 1:
            raise CompileError(f"{name!r} is an array (missing index?)", line)
        if not scalar and g.size is None:
            raise CompileError(f"{name!r} is a scalar (unexpected index)", line)
        return g
