"""Tokenizer for the minic language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


class CompileError(ReproError):
    """Raised for any minic front-end error."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


KEYWORDS = {"int", "void", "if", "else", "while", "for", "return"}

# multi-character operators, longest first
_OPERATORS = [
    "<<=", ">>=",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",",
]


@dataclass(frozen=True)
class Token:
    kind: str          # "int" | "ident" | "kw" | "op" | "eof"
    text: str
    line: int

    @property
    def value(self) -> int:
        assert self.kind == "int"
        return int(self.text, 0)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    i, line = 0, 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i + 1
            if ch == "0" and j < n and source[j] in "xX":
                j += 1
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
            tokens.append(Token("int", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            tokens.append(
                Token("kw" if text in KEYWORDS else "ident", text, line)
            )
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
