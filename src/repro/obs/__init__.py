"""Unified observability: tracing + metrics across sim/selection/engine.

Quick tour::

    import repro.obs as obs

    rec = obs.enable()                     # install a live recorder
    ...run experiments...                  # hooks fire throughout repro
    obs.export_jsonl(rec, "metrics.jsonl")         # lossless archive
    obs.export_trace_events(rec, "trace.json")     # chrome://tracing
    obs.disable()

Key properties:

- **zero overhead when disabled** — the default recorder is disabled;
  hot loops hoist one boolean check and skip every hook;
- **spans** — nested wall-clock spans (engine jobs, selection runs,
  simulator invocations) plus simulated-cycle spans (PFU
  reconfigurations) on separate flame-viewer tracks;
- **metrics** — labelled counters/gauges/histograms (per-stage stall
  cycles, reconfiguration events, issue-width utilisation, cache
  traffic, per-job wall time);
- **ambient labels** — the engine pipeline scopes ``workload`` and
  ``algorithm`` onto everything recorded inside a stage, so reports can
  break stalls down per workload and reconfigurations per algorithm.

See ``docs/observability.md`` for the full model and the CLI flags
(``t1000 ... --trace-out FILE --metrics-out FILE``,
``t1000 metrics report FILE...``).
"""

from repro.obs.export import (
    export_jsonl,
    export_trace_events,
    jsonl_rows,
    load_jsonl,
    load_trace_events,
    trace_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSeries,
    MetricsRegistry,
)
from repro.obs.recorder import (
    CYCLES,
    NULL_RECORDER,
    WALL,
    EventRecord,
    Recorder,
    SpanRecord,
    disable,
    enable,
    event,
    get_recorder,
    observed,
    set_recorder,
    span,
)
from repro.obs.report import merge_metric_rows, render_metrics_report

__all__ = [
    "CYCLES", "Counter", "EventRecord", "Gauge", "Histogram", "MetricSeries",
    "MetricsRegistry", "NULL_RECORDER", "Recorder", "SpanRecord", "WALL",
    "disable", "enable", "event", "export_jsonl", "export_trace_events",
    "get_recorder", "jsonl_rows", "load_jsonl", "load_trace_events",
    "merge_metric_rows", "observed", "render_metrics_report", "set_recorder",
    "span", "trace_events",
]
