"""Labelled metric instruments: counters, gauges, histograms.

A :class:`MetricsRegistry` owns every series.  A *series* is one
instrument identified by ``(name, labels)``; asking for the same pair
twice returns the same object, so hot paths can resolve an instrument
once (one dict lookup) and then call ``inc``/``set``/``observe`` — a
plain attribute update — per event.

Instruments are deliberately dependency-free and in-process only; the
exporters in :mod:`repro.obs.export` turn a registry into JSONL rows.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator

#: Power-of-two-ish buckets suit most machine quantities the simulators
#: record (stall lengths, issue widths, wall milliseconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A bucketed distribution with count/sum/min/max.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the final
    slot counts overflows (observations above every bound).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass(frozen=True)
class MetricSeries:
    """One (name, labels) series and its instrument, for export/report."""

    name: str
    kind: str                    # "counter" | "gauge" | "histogram"
    labels: dict
    instrument: object

    def snapshot(self) -> dict:
        """JSON-serialisable row describing the series' current value."""
        row: dict = {"name": self.name, "kind": self.kind,
                     "labels": dict(self.labels)}
        inst = self.instrument
        if self.kind == "histogram":
            assert isinstance(inst, Histogram)
            row.update(
                count=inst.count, sum=inst.sum, min=inst.min, max=inst.max,
                bounds=list(inst.bounds), bucket_counts=list(inst.bucket_counts),
            )
        else:
            row["value"] = inst.value  # type: ignore[attr-defined]
        return row


class MetricsRegistry:
    """Owns every metric series recorded through one recorder."""

    def __init__(self) -> None:
        self._series: dict[tuple, MetricSeries] = {}

    # ------------------------------------------------------------------

    def _get(self, kind: str, cls, name: str, labels: dict, **ctor):
        key = (name, tuple(sorted(labels.items())))
        series = self._series.get(key)
        if series is None:
            series = MetricSeries(name, kind, dict(labels), cls(**ctor))
            self._series[key] = series
        elif series.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {series.kind}, "
                f"requested as {kind}"
            )
        return series.instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        ctor = {"bounds": bounds} if bounds is not None else {}
        return self._get("histogram", Histogram, name, labels, **ctor)

    # ------------------------------------------------------------------

    def series(self) -> Iterator[MetricSeries]:
        """Every series, in registration order."""
        return iter(self._series.values())

    def snapshot(self) -> list[dict]:
        """JSON-serialisable rows for every series (one per
        :meth:`MetricSeries.snapshot`), in registration order — the
        payload behind the serve ``stats`` endpoint."""
        return [series.snapshot() for series in self._series.values()]

    def value(self, name: str, **labels):
        """Current value of a series, or None (test/report convenience)."""
        key = (name, tuple(sorted(labels.items())))
        series = self._series.get(key)
        if series is None:
            return None
        if series.kind == "histogram":
            return series.instrument
        return series.instrument.value  # type: ignore[attr-defined]

    def total(self, prefix: str) -> float:
        """Sum over every counter/gauge whose name extends ``prefix``."""
        return sum(
            s.instrument.value  # type: ignore[attr-defined]
            for s in self._series.values()
            if s.kind != "histogram"
            and (s.name == prefix or s.name.startswith(prefix + "."))
        )

    def __len__(self) -> int:
        return len(self._series)
