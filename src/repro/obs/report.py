"""Human-readable breakdown of exported metrics (``t1000 metrics report``).

Consumes one or more parsed JSONL exports (see
:func:`repro.obs.export.load_jsonl`) and renders the analyses the paper's
discussion leans on: per-stage stall breakdowns per workload, PFU
reconfiguration counts per selection algorithm, selection-decision
summaries, and engine cache/job traffic.
"""

from __future__ import annotations

from collections import defaultdict

_STALL_PREFIX = "sim.stall."
_GROUP_LABELS = ("workload", "program")


def _series_key(row: dict) -> tuple[str, tuple]:
    return row["name"], tuple(sorted(row.get("labels", {}).items()))


def merge_metric_rows(datasets: list[dict]) -> list[dict]:
    """Fold metric rows from several exports (same series values add)."""
    merged: dict[tuple, dict] = {}
    for data in datasets:
        for row in data.get("metrics", []):
            key = _series_key(row)
            existing = merged.get(key)
            if existing is None:
                merged[key] = {**row, "labels": dict(row.get("labels", {}))}
            elif row["kind"] == "histogram":
                existing["count"] += row.get("count", 0)
                existing["sum"] += row.get("sum", 0)
            elif row["kind"] == "counter":
                existing["value"] += row.get("value", 0)
            else:                       # gauge: last export wins
                existing["value"] = row.get("value", existing["value"])
    return list(merged.values())


def _group_of(labels: dict) -> str:
    for key in _GROUP_LABELS:
        if labels.get(key):
            return str(labels[key])
    return "(unlabelled)"


def _algorithm_of(labels: dict) -> str:
    return str(labels.get("algorithm", "(none)"))


def _fmt_count(n: float) -> str:
    return f"{int(n):,}" if float(n).is_integer() else f"{n:,.2f}"


def render_metrics_report(datasets: list[dict], top: int = 6) -> str:
    """Render the report for one or more :func:`load_jsonl` results."""
    rows = merge_metric_rows(datasets)
    lines: list[str] = ["t1000 metrics report", "=" * 21]

    # ------------------------------------------------------- stalls
    stalls: dict[tuple[str, str], dict[str, float]] = defaultdict(dict)
    for row in rows:
        if not row["name"].startswith(_STALL_PREFIX) or row["kind"] != "counter":
            continue
        labels = row["labels"]
        key = (_group_of(labels), _algorithm_of(labels))
        reason = row["name"][len(_STALL_PREFIX):]
        stalls[key][reason] = stalls[key].get(reason, 0) + row["value"]
    if stalls:
        lines.append("")
        lines.append("per-stage stall cycles (top reasons per workload)")
        for (group, algorithm) in sorted(stalls):
            reasons = stalls[(group, algorithm)]
            total = sum(reasons.values())
            lines.append(f"  {group} [{algorithm}] — {_fmt_count(total)} stall cycles")
            ranked = sorted(reasons.items(), key=lambda kv: -kv[1])[:top]
            for reason, cycles in ranked:
                share = cycles / total if total else 0.0
                lines.append(
                    f"    {reason:<24} {_fmt_count(cycles):>14}  ({share:.1%})"
                )

    # ------------------------------------------------------- PFU reconfig
    reconfig: dict[tuple[str, str], dict[str, float]] = defaultdict(
        lambda: {"events": 0, "cycles": 0}
    )
    for row in rows:
        if row["kind"] != "counter":
            continue
        if row["name"] == "sim.pfu.reconfig":
            field = "events"
        elif row["name"] == "sim.pfu.reconfig_cycles":
            field = "cycles"
        else:
            continue
        labels = row["labels"]
        reconfig[(_group_of(labels), _algorithm_of(labels))][field] += row["value"]
    if reconfig:
        lines.append("")
        lines.append("PFU reconfigurations per selection algorithm")
        for (group, algorithm) in sorted(reconfig):
            data = reconfig[(group, algorithm)]
            lines.append(
                f"  {group} [{algorithm}]: "
                f"{_fmt_count(data['events'])} reconfiguration(s), "
                f"{_fmt_count(data['cycles'])} cycle(s) loading configurations"
            )

    # ------------------------------------------------------- selection
    decisions: dict[tuple[str, str], dict[str, float]] = defaultdict(dict)
    for row in rows:
        if row["kind"] != "counter" or not row["name"].startswith(
            "selection.candidates."
        ):
            continue
        labels = row["labels"]
        decision = row["name"].split(".", 2)[2]
        reason = labels.get("reason")
        label = f"{decision}({reason})" if reason else decision
        key = (_group_of(labels), _algorithm_of(labels))
        decisions[key][label] = decisions[key].get(label, 0) + row["value"]
    if decisions:
        lines.append("")
        lines.append("selection decisions (candidates considered)")
        for (group, algorithm) in sorted(decisions):
            parts = ", ".join(
                f"{label}={_fmt_count(n)}"
                for label, n in sorted(decisions[(group, algorithm)].items())
            )
            lines.append(f"  {group} [{algorithm}]: {parts}")

    # ------------------------------------------------------- issue width
    widths = [
        row for row in rows
        if row["name"] == "sim.issue.width" and row["kind"] == "histogram"
    ]
    if widths:
        lines.append("")
        lines.append("issue-width utilisation (mean instructions per issuing cycle)")
        for row in sorted(
            widths, key=lambda r: (_group_of(r["labels"]),
                                   _algorithm_of(r["labels"]))
        ):
            mean = row["sum"] / row["count"] if row.get("count") else 0.0
            lines.append(
                f"  {_group_of(row['labels'])} "
                f"[{_algorithm_of(row['labels'])}]: {mean:.2f}"
            )

    # ------------------------------------------------------- sharded replay
    shard_counters: dict[str, float] = defaultdict(float)
    shard_fallbacks: dict[str, float] = defaultdict(float)
    shard_hists: dict[str, dict[str, float]] = defaultdict(
        lambda: {"count": 0, "sum": 0}
    )
    for row in rows:
        name = row["name"]
        if not name.startswith("sim.shard."):
            continue
        if row["kind"] == "counter":
            shard_counters[name] += row["value"]
            if name == "sim.shard.fallback":
                reason = str(row["labels"].get("reason", "(unknown)"))
                shard_fallbacks[reason] += row["value"]
        elif row["kind"] == "histogram":
            shard_hists[name]["count"] += row.get("count", 0)
            shard_hists[name]["sum"] += row.get("sum", 0)
    if shard_counters or shard_hists:
        runs = shard_counters.get("sim.shard.runs", 0)
        slices = shard_counters.get("sim.shard.slices", 0)
        repairs = shard_counters.get("sim.shard.repairs", 0)
        lines.append("")
        lines.append("sharded replay (parallel trace slices)")
        lines.append(
            f"  sharded runs: {_fmt_count(runs)}; "
            f"slices replayed: {_fmt_count(slices)}"
            + (f" ({slices / runs:.1f}/run)" if runs else "")
        )
        if repairs:
            lines.append(
                f"  checkpoint-seeded repairs: {_fmt_count(repairs)}"
            )
        stitch = shard_hists.get("sim.shard.stitch.ms")
        if stitch and stitch["count"]:
            lines.append(
                f"  stitch overhead: {stitch['sum'] / stitch['count']:.2f} "
                f"ms/run (boundary pass + verify + merge)"
            )
        warm = shard_hists.get("sim.shard.warmup.frac")
        if warm and warm["count"]:
            lines.append(
                f"  warmup fraction: {warm['sum'] / warm['count']:.1%} "
                f"of replayed instructions discarded as overlap"
            )
        if shard_fallbacks:
            parts = ", ".join(
                f"{reason}={_fmt_count(n)}"
                for reason, n in sorted(shard_fallbacks.items())
            )
            lines.append(f"  serial fallbacks: {parts}")

    # ------------------------------------------------------- explore
    sweeps: dict[str, dict[str, float]] = defaultdict(dict)
    for row in rows:
        if row["name"] != "explore.points" or row["kind"] != "counter":
            continue
        labels = row["labels"]
        sweep = str(labels.get("sweep", "(unnamed)"))
        status = str(labels.get("status", "(unknown)"))
        sweeps[sweep][status] = sweeps[sweep].get(status, 0) + row["value"]
    if sweeps:
        lines.append("")
        lines.append("design-space sweeps (points by outcome)")
        for sweep in sorted(sweeps):
            statuses = sweeps[sweep]
            total = sum(statuses.values())
            parts = ", ".join(
                f"{status}={_fmt_count(n)}"
                for status, n in sorted(statuses.items())
            )
            pruned = statuses.get("pruned", 0)
            saved = f" ({pruned / total:.1%} pruned)" if pruned else ""
            lines.append(
                f"  {sweep}: {_fmt_count(total)} point(s) — {parts}{saved}"
            )

    # --------------------------------------------- serve wire framing
    wire_bytes: dict[str, float] = defaultdict(float)
    cache_counts: dict[str, float] = defaultdict(float)
    for row in rows:
        name = row["name"]
        if row["kind"] != "counter":
            continue
        if name in ("serve.wire.rx_bytes", "serve.wire.tx_bytes"):
            wire_bytes[name] += row["value"]
        elif name.startswith("serve.trace_cache."):
            cache_counts[name.rsplit(".", 1)[1]] += row["value"]
    if wire_bytes or cache_counts:
        lines.append("")
        lines.append("serve (wire + trace cache)")
        if wire_bytes:
            lines.append(
                f"  wire traffic: "
                f"{_fmt_count(wire_bytes['serve.wire.rx_bytes'])} B in, "
                f"{_fmt_count(wire_bytes['serve.wire.tx_bytes'])} B out"
            )
        if cache_counts:
            hits = cache_counts.get("hits", 0)
            misses = cache_counts.get("misses", 0)
            looked = hits + misses
            rate = f" ({hits / looked:.1%} hit rate)" if looked else ""
            lines.append(
                f"  trace cache: {_fmt_count(hits)} hit(s), "
                f"{_fmt_count(misses)} miss(es){rate}, "
                f"{_fmt_count(cache_counts.get('evictions', 0))} "
                f"eviction(s), "
                f"{_fmt_count(cache_counts.get('need_trace', 0))} "
                f"need_trace round trip(s)"
            )

    # ------------------------------------------------------- gateway
    gw_requests: dict[str, float] = defaultdict(float)
    gw_outcomes: dict[str, float] = defaultdict(float)
    gw_classes: dict[str, dict[str, float]] = defaultdict(
        lambda: {"count": 0, "sum": 0}
    )
    gw_failovers: dict[str, float] = defaultdict(float)
    gw_imbalance = None
    gw_rejected: dict[str, float] = defaultdict(float)
    for row in rows:
        name = row["name"]
        if not name.startswith("gateway."):
            continue
        labels = row.get("labels", {})
        if name == "gateway.requests" and row["kind"] == "counter":
            gw_requests[str(labels.get("backend", "(none)"))] += row["value"]
            gw_outcomes[str(labels.get("outcome", "?"))] += row["value"]
        elif name == "gateway.failover" and row["kind"] == "counter":
            gw_failovers[str(labels.get("backend", "?"))] += row["value"]
        elif name == "gateway.rejected" and row["kind"] == "counter":
            key = (f"{labels.get('klass', '?')}"
                   f"[{labels.get('reason', '?')}]")
            gw_rejected[key] += row["value"]
        elif name == "gateway.ring.imbalance" and row["kind"] == "gauge":
            gw_imbalance = row["value"]
        elif name == "gateway.latency.ms" and row["kind"] == "histogram":
            klass = str(labels.get("klass", "?"))
            gw_classes[klass]["count"] += row.get("count", 0)
            gw_classes[klass]["sum"] += row.get("sum", 0)
    if gw_requests or gw_classes:
        lines.append("")
        lines.append("gateway (fleet routing)")
        total = sum(gw_requests.values())
        parts = ", ".join(
            f"{outcome}={_fmt_count(n)}"
            for outcome, n in sorted(gw_outcomes.items())
        )
        lines.append(
            f"  requests routed: {_fmt_count(total)}"
            + (f" — {parts}" if parts else "")
        )
        for backend, n in sorted(gw_requests.items(), key=lambda kv: -kv[1]):
            share = n / total if total else 0.0
            lines.append(
                f"    {backend:<24} {_fmt_count(n):>10}  ({share:.1%})"
            )
        if gw_imbalance is not None:
            lines.append(
                f"  ring imbalance: {gw_imbalance:.2f}x "
                f"(busiest backend vs even split; 1.00 = perfectly even)"
            )
        for klass in sorted(gw_classes):
            data = gw_classes[klass]
            if data["count"]:
                lines.append(
                    f"  {klass} latency: "
                    f"{data['sum'] / data['count']:.1f} ms mean "
                    f"over {_fmt_count(data['count'])} request(s)"
                )
        if gw_failovers:
            parts = ", ".join(
                f"{backend}={_fmt_count(n)}"
                for backend, n in sorted(gw_failovers.items())
            )
            lines.append(f"  failovers (replayed in-flight): {parts}")
        if gw_rejected:
            parts = ", ".join(
                f"{klass}={_fmt_count(n)}"
                for klass, n in sorted(gw_rejected.items())
            )
            lines.append(f"  admission rejections: {parts}")

    # ------------------------------------------------------- engine
    engine = [
        row for row in rows
        if row["name"].startswith("engine.") and row["kind"] == "counter"
    ]
    if engine:
        totals: dict[str, float] = defaultdict(float)
        for row in engine:
            totals[row["name"]] += row["value"]
        hits = sum(v for n, v in totals.items()
                   if n.startswith("engine.cache.hit"))
        misses = sum(v for n, v in totals.items()
                     if n.startswith("engine.cache.miss"))
        sims = sum(v for n, v in totals.items()
                   if n.startswith("engine.sim."))
        lines.append("")
        lines.append("engine")
        if hits or misses:
            rate = hits / (hits + misses) if hits + misses else 0.0
            lines.append(
                f"  artefact cache: {_fmt_count(hits)} hit(s) / "
                f"{_fmt_count(misses)} miss(es) ({rate:.1%} hit rate)"
            )
        if sims:
            lines.append(f"  simulations run: {_fmt_count(sims)}")
        for status in ("ok", "failed", "skipped"):
            n = totals.get(f"engine.jobs.{status}", 0)
            if n:
                lines.append(f"  jobs {status}: {_fmt_count(n)}")

    if len(lines) == 2:
        lines.append("")
        lines.append("(no metrics found — was the run made with --metrics-out?)")
    return "\n".join(lines)
