"""The span/metric recorder and the process-wide recorder slot.

Design contract (the reason tier-1 timing numbers are safe): the module
global returned by :func:`get_recorder` is a disabled recorder by
default, and every instrumentation site in the hot layers hoists

    rec = get_recorder()
    obs = rec if rec.enabled else None

before its loop, guarding each hook with ``if obs is not None``.  With
observability off the entire cost is that one boolean check; nothing is
allocated, no dict is touched, no record is kept.

Two clocks coexist:

- ``"wall"`` — seconds since the recorder's epoch (``perf_counter``),
  used for engine jobs, selection runs, and simulator invocations;
- ``"cycles"`` — *simulated* cycles, used by the timing model for
  machine-level spans (e.g. PFU reconfigurations), so a flame view of a
  run shows both real time and simulated time on separate tracks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

WALL = "wall"
CYCLES = "cycles"

#: Default cap on retained span+event records; beyond it new records are
#: counted in ``Recorder.dropped`` instead of kept (bounded memory under
#: pathological runs, e.g. a thrashing PFU emitting millions of spans).
DEFAULT_MAX_RECORDS = 250_000


@dataclass
class SpanRecord:
    """One closed span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    clock: str = WALL
    track: str = "main"
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class EventRecord:
    """One instant event."""

    name: str
    ts: float
    clock: str = WALL
    track: str = "main"
    attrs: dict = field(default_factory=dict)


class Recorder:
    """Collects spans, events, and metrics for one observed run."""

    def __init__(
        self, enabled: bool = True, max_records: int = DEFAULT_MAX_RECORDS
    ) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self.metrics = MetricsRegistry()
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.dropped = 0
        self.epoch = time.perf_counter()
        self._stack: list[int] = []
        self._next_id = 1
        self._ambient: dict = {}

    # ------------------------------------------------------------------
    # tracing

    def _now(self) -> float:
        return time.perf_counter() - self.epoch

    def _room(self) -> bool:
        if len(self.spans) + len(self.events) >= self.max_records:
            self.dropped += 1
            return False
        return True

    @contextmanager
    def span(self, name: str, track: str = "main", **attrs) -> Iterator[dict | None]:
        """Record a nested wall-clock span around the ``with`` body.

        Yields the span's (mutable) attribute dict so the body can attach
        results known only at the end — or ``None`` when disabled.
        """
        if not self.enabled:
            yield None
            return
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = self._now()
        try:
            yield attrs
        finally:
            self._stack.pop()
            if self._room():
                self.spans.append(SpanRecord(
                    span_id, parent, name, start, self._now(),
                    WALL, track, attrs,
                ))

    def add_span(
        self, name: str, start: float, end: float,
        clock: str = CYCLES, track: str = "main", **attrs,
    ) -> None:
        """Record an explicit (already timed) span, e.g. in simulated cycles."""
        if not self.enabled or not self._room():
            return
        span_id = self._next_id
        self._next_id += 1
        self.spans.append(SpanRecord(
            span_id, None, name, start, end, clock, track, attrs,
        ))

    def event(
        self, name: str, ts: float | None = None,
        clock: str = WALL, track: str = "main", **attrs,
    ) -> None:
        """Record an instant event (wall-clock 'now' unless ``ts`` given)."""
        if not self.enabled or not self._room():
            return
        if ts is None:
            ts = self._now()
            clock = WALL
        self.events.append(EventRecord(name, ts, clock, track, attrs))

    # ------------------------------------------------------------------
    # ambient labels (attached to metrics resolved inside the scope)

    @contextmanager
    def scoped(self, **labels) -> Iterator[None]:
        """Merge ``labels`` into every metric resolved inside the scope.

        The engine pipeline uses this to stamp ``workload``/``algorithm``
        onto metrics the simulators record without the simulators having
        to know what experiment they are part of.
        """
        previous = self._ambient
        self._ambient = {**previous, **labels}
        try:
            yield
        finally:
            self._ambient = previous

    def _labels(self, labels: dict) -> dict:
        return {**self._ambient, **labels} if self._ambient else labels

    def counter(self, name: str, **labels) -> Counter:
        return self.metrics.counter(name, **self._labels(labels))

    def gauge(self, name: str, **labels) -> Gauge:
        return self.metrics.gauge(name, **self._labels(labels))

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        return self.metrics.histogram(name, bounds, **self._labels(labels))


# ----------------------------------------------------------------------
# the process-wide recorder slot

#: The permanently disabled recorder every hook sees by default.
NULL_RECORDER = Recorder(enabled=False)

_recorder: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The currently installed recorder (disabled unless enabled)."""
    return _recorder


def set_recorder(recorder: Recorder | None) -> Recorder:
    """Install ``recorder`` (None restores the null); returns the previous."""
    global _recorder
    previous = _recorder
    _recorder = recorder if recorder is not None else NULL_RECORDER
    return previous


def enable(max_records: int = DEFAULT_MAX_RECORDS) -> Recorder:
    """Install and return a fresh enabled recorder."""
    recorder = Recorder(enabled=True, max_records=max_records)
    set_recorder(recorder)
    return recorder


def disable() -> Recorder:
    """Restore the disabled default; returns the recorder that was active."""
    return set_recorder(None)


@contextmanager
def observed(recorder: Recorder | None = None) -> Iterator[Recorder]:
    """Temporarily install a recorder (a fresh one by default)."""
    active = recorder if recorder is not None else Recorder(enabled=True)
    previous = set_recorder(active)
    try:
        yield active
    finally:
        set_recorder(previous)


# Module-level conveniences that no-op when observability is disabled —
# for call sites (engine, selection) where per-call overhead is dwarfed
# by the work being observed.

@contextmanager
def span(name: str, track: str = "main", **attrs) -> Iterator[dict | None]:
    with _recorder.span(name, track=track, **attrs) as sp:
        yield sp


def event(name: str, **attrs) -> None:
    _recorder.event(name, **attrs)
