"""Exporters: JSONL (lossless) and Chrome trace-event (flame viewers).

JSONL is the round-trippable archival format: one JSON object per line,
a ``meta`` header first, then every metric series, span, and event.
:func:`load_jsonl` parses it back into the same record dataclasses.

The trace-event exporter emits the Chrome/Perfetto "Trace Event Format"
(a JSON object with a ``traceEvents`` array of ``"ph": "X"`` complete
events), so a whole experiment run can be opened in ``chrome://tracing``
or https://ui.perfetto.dev.  Wall-clock spans land in one synthetic
process (1 µs per real µs); simulated-cycle spans land in a second
process at 1 µs per cycle, giving the machine-level view (PFU
reconfigurations, …) its own flame rows.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.recorder import CYCLES, WALL, EventRecord, Recorder, SpanRecord

JSONL_VERSION = 1

_WALL_PID = 1
_CYCLES_PID = 2
_PROCESS_NAMES = {_WALL_PID: "t1000 wall clock", _CYCLES_PID: "simulated cycles"}


def _json_safe(value: Any) -> Any:
    """Coerce attribute values to something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


# ----------------------------------------------------------------------
# JSONL

def jsonl_rows(recorder: Recorder) -> list[dict]:
    """Every record as a JSON-serialisable row (meta first)."""
    rows: list[dict] = [{
        "type": "meta", "version": JSONL_VERSION,
        "spans": len(recorder.spans), "events": len(recorder.events),
        "metrics": len(recorder.metrics), "dropped": recorder.dropped,
    }]
    for series in recorder.metrics.series():
        row = series.snapshot()
        row["type"] = "metric"
        rows.append(row)
    for sp in recorder.spans:
        rows.append({
            "type": "span", "id": sp.span_id, "parent": sp.parent_id,
            "name": sp.name, "start": sp.start, "end": sp.end,
            "clock": sp.clock, "track": sp.track,
            "attrs": _json_safe(sp.attrs),
        })
    for ev in recorder.events:
        rows.append({
            "type": "event", "name": ev.name, "ts": ev.ts,
            "clock": ev.clock, "track": ev.track,
            "attrs": _json_safe(ev.attrs),
        })
    return rows


def export_jsonl(recorder: Recorder, path: str) -> int:
    """Write the recorder to ``path`` as JSONL; returns the row count."""
    rows = jsonl_rows(recorder)
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def load_jsonl(path: str) -> dict:
    """Parse a JSONL export back into records.

    Returns ``{"meta": dict, "metrics": [dict], "spans": [SpanRecord],
    "events": [EventRecord]}``; metric rows keep their snapshot shape.
    """
    meta: dict = {}
    metrics: list[dict] = []
    spans: list[SpanRecord] = []
    events: list[EventRecord] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.get("type")
            if kind == "meta":
                meta = row
            elif kind == "metric":
                metrics.append(row)
            elif kind == "span":
                spans.append(SpanRecord(
                    span_id=row["id"], parent_id=row["parent"],
                    name=row["name"], start=row["start"], end=row["end"],
                    clock=row["clock"], track=row["track"],
                    attrs=row.get("attrs", {}),
                ))
            elif kind == "event":
                events.append(EventRecord(
                    name=row["name"], ts=row["ts"], clock=row["clock"],
                    track=row["track"], attrs=row.get("attrs", {}),
                ))
    return {"meta": meta, "metrics": metrics, "spans": spans, "events": events}


# ----------------------------------------------------------------------
# Chrome trace-event format

def trace_events(recorder: Recorder) -> list[dict]:
    """The recorder as Chrome trace-event dicts (metadata included)."""
    tracks: dict[tuple[int, str], int] = {}
    out: list[dict] = []

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tracks.get(key)
        if tid is None:
            tid = len([k for k in tracks if k[0] == pid]) + 1
            tracks[key] = tid
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return tid

    for pid, name in _PROCESS_NAMES.items():
        out.append({
            "ph": "M", "name": "process_name", "pid": pid,
            "args": {"name": name},
        })

    def scale(value: float, clock: str) -> float:
        # wall seconds -> microseconds; one simulated cycle -> one "µs"
        return value * 1e6 if clock == WALL else value

    for sp in recorder.spans:
        pid = _WALL_PID if sp.clock == WALL else _CYCLES_PID
        out.append({
            "ph": "X", "name": sp.name, "cat": sp.clock,
            "pid": pid, "tid": tid_for(pid, sp.track),
            "ts": scale(sp.start, sp.clock),
            "dur": scale(sp.end - sp.start, sp.clock),
            "args": _json_safe(sp.attrs),
        })
    for ev in recorder.events:
        pid = _WALL_PID if ev.clock == WALL else _CYCLES_PID
        out.append({
            "ph": "i", "s": "t", "name": ev.name, "cat": ev.clock,
            "pid": pid, "tid": tid_for(pid, ev.track),
            "ts": scale(ev.ts, ev.clock),
            "args": _json_safe(ev.attrs),
        })
    return out


def export_trace_events(recorder: Recorder, path: str) -> int:
    """Write a ``chrome://tracing``-loadable file; returns the event count."""
    events = trace_events(recorder)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "t1000", "dropped_records": recorder.dropped},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return len(events)


def load_trace_events(path: str) -> dict:
    """Parse a trace-event export (for tests and tooling)."""
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path} is not a trace-event file")
    return payload

# CYCLES is re-exported for exporter-adjacent tooling (report, tests).
__all__ = [
    "CYCLES", "JSONL_VERSION", "export_jsonl", "export_trace_events",
    "jsonl_rows", "load_jsonl", "load_trace_events", "trace_events",
]
